//! Fault injection and the survivable epoch loop.
//!
//! Production fabrics lose links and switches mid-day; the paper's epoch
//! loop assumes a healthy graph. This module closes that gap:
//!
//! * [`FaultSchedule`] — a deterministic, seeded day-long schedule of
//!   fail/repair events (memoryless per-hour failures, fixed repair lag),
//!   interleaved with the trace's hourly rate deltas.
//! * [`simulate_with_faults`] — the epoch loop of
//!   [`crate::simulate`] hardened to run **every** hour of the day no
//!   matter what fails. On event hours it rebuilds the degraded view
//!   ([`ppdc_topology::Graph::degraded_view`]) and its distance matrix in
//!   place, elects the *serving component*, masks out stranded flows,
//!   rebuilds candidate-restricted attach aggregates, and repairs the VNF
//!   placement when a failure knocked one of its switches out. Quiet hours
//!   keep the seed loop's incremental delta feed.
//! * [`DegradedHourRecord`] — per-hour degradation telemetry (stranded
//!   flows and rate, reroute cost over the healthy fabric, recovery
//!   migrations, blackout and degraded-solver flags).
//!
//! ## Serving component and stranded flows
//!
//! When failures partition the fabric, the loop serves the component with
//! the most alive switches (ties: most alive hosts, then lowest component
//! id). Flows with an endpoint host outside that component are *stranded*:
//! their rates are masked to zero so no cost term can observe an
//! [`INFINITY`] distance, and they re-enter the workload automatically at
//! the repair event that reconnects them. An hour whose serving component
//! has fewer switches than the SFC has VNFs is a *blackout*: nothing can
//! be placed, the hour records zero served cost, and the loop moves on.
//!
//! ## Placement repair
//!
//! A failure that removes one of the placement's switches triggers
//! *recovery* before any policy runs: Algorithm 3 re-places the chain
//! inside the serving component, paying `μ·d(old, new)` per surviving VNF
//! and `μ·diameter` (degraded, i.e. largest finite pairwise distance) per
//! VNF whose old switch is gone — re-instantiating from the image store is
//! priced like the longest possible copy. Recovery hours skip the policy.

use ppdc_migration::{
    mcf_vm_migration, mpareto_with_agg, mpareto_with_closure, no_migration_with_agg,
    optimal_migration_with_deadline, plan_vm_migration, MigrationError,
};
use ppdc_model::{comm_cost, FlowId, ModelError, Sfc, Workload};
use ppdc_obs::{names as obs_names, Stopwatch};
use ppdc_placement::{
    dp_placement_with_agg, dp_placement_with_closure, AttachAggregates, PlacementError,
};
use ppdc_topology::{
    CachedClosure, Cost, DistanceMatrix, EdgeId, FaultSet, Graph, NodeId, NodeKind, Partition,
    TopologyError, INFINITY,
};
use ppdc_traffic::{rng_for_run, DynamicTrace};
use rand::Rng;

use crate::simulator::{HourRecord, MigrationPolicy, SimConfig};

/// Failure-process parameters for [`FaultSchedule::generate`].
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Per-hour probability that a healthy link fails.
    pub link_fail_per_hour: f64,
    /// Per-hour probability that a healthy switch fails.
    pub switch_fail_per_hour: f64,
    /// Hours until a failed element comes back (floored at 1).
    pub repair_after: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            link_fail_per_hour: 0.02,
            switch_fail_per_hour: 0.005,
            repair_after: 2,
        }
    }
}

/// One fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A switch goes dark (all incident links with it).
    FailSwitch(NodeId),
    /// A failed switch comes back.
    RepairSwitch(NodeId),
    /// A single link goes dark.
    FailLink(EdgeId),
    /// A failed link comes back.
    RepairLink(EdgeId),
}

impl FaultKind {
    /// True for the two failure (not repair) transitions.
    pub fn is_failure(self) -> bool {
        matches!(self, FaultKind::FailSwitch(_) | FaultKind::FailLink(_))
    }
}

/// A fault transition pinned to the hour it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The hour (1-based, like the epoch loop's) the transition applies.
    pub hour: u32,
    /// What fails or recovers.
    pub kind: FaultKind,
}

/// A deterministic day-long schedule of fail/repair events.
///
/// Events are kept sorted by hour with repairs ahead of failures within an
/// hour, so an element repaired at `h` can immediately fail again at `h`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    n_hours: u32,
}

impl FaultSchedule {
    /// Wraps hand-crafted events (tests, replayed traces). Sorts them into
    /// canonical order.
    pub fn new(mut events: Vec<FaultEvent>, n_hours: u32) -> Self {
        events.sort_by_key(|e| (e.hour, e.kind.is_failure()));
        FaultSchedule { events, n_hours }
    }

    /// Samples a schedule: each hour, every healthy switch fails with
    /// probability `switch_fail_per_hour` and every healthy link with
    /// `link_fail_per_hour`; a failed element repairs `repair_after` hours
    /// later (repairs past the end of the day are dropped). Fully
    /// deterministic in `(g, n_hours, cfg, seed)` — switches are swept
    /// before links, both in id order, with one ChaCha8 stream.
    pub fn generate(g: &Graph, n_hours: u32, cfg: &FaultConfig, seed: u64) -> Self {
        // 0xFA17 keeps this stream disjoint from the workload generator's
        // run indices for the same seed.
        let mut rng = rng_for_run(seed, 0xFA17);
        let repair_after = cfg.repair_after.max(1);
        // Hour at which the element is back up (0 = never failed).
        let mut up_node = vec![0u32; g.num_nodes()];
        let mut up_edge = vec![0u32; g.num_edges()];
        let mut events = Vec::new();
        let switches: Vec<NodeId> = g.switches().collect();
        for h in 1..=n_hours {
            for &s in &switches {
                if up_node[s.index()] > h {
                    continue; // still down
                }
                if rng.gen_bool(cfg.switch_fail_per_hour) {
                    let up = h.saturating_add(repair_after);
                    up_node[s.index()] = up;
                    events.push(FaultEvent {
                        hour: h,
                        kind: FaultKind::FailSwitch(s),
                    });
                    if up <= n_hours {
                        events.push(FaultEvent {
                            hour: up,
                            kind: FaultKind::RepairSwitch(s),
                        });
                    }
                }
            }
            for (i, up_slot) in up_edge.iter_mut().enumerate() {
                if *up_slot > h {
                    continue;
                }
                if rng.gen_bool(cfg.link_fail_per_hour) {
                    let e = EdgeId(i as u32);
                    let up = h.saturating_add(repair_after);
                    *up_slot = up;
                    events.push(FaultEvent {
                        hour: h,
                        kind: FaultKind::FailLink(e),
                    });
                    if up <= n_hours {
                        events.push(FaultEvent {
                            hour: up,
                            kind: FaultKind::RepairLink(e),
                        });
                    }
                }
            }
        }
        Self::new(events, n_hours)
    }

    /// The day length the schedule was generated for.
    pub fn n_hours(&self) -> u32 {
        self.n_hours
    }

    /// All events in canonical order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events taking effect at hour `h` (repairs first).
    pub fn events_at(&self, h: u32) -> impl Iterator<Item = &FaultEvent> + '_ {
        self.events.iter().filter(move |e| e.hour == h)
    }

    /// How many *failure* (not repair) events the schedule injects.
    pub fn num_fail_events(&self) -> usize {
        self.events.iter().filter(|e| e.kind.is_failure()).count()
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Errors produced by the fault-aware simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A migration policy failed.
    Migration(MigrationError),
    /// A placement (re-)solve failed.
    Placement(PlacementError),
    /// Invalid model input (rate vector shape, …).
    Model(ModelError),
    /// A fault event referenced an element outside the graph.
    Topology(TopologyError),
}

impl From<MigrationError> for SimError {
    fn from(e: MigrationError) -> Self {
        SimError::Migration(e)
    }
}

impl From<PlacementError> for SimError {
    fn from(e: PlacementError) -> Self {
        SimError::Placement(e)
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<TopologyError> for SimError {
    fn from(e: TopologyError) -> Self {
        SimError::Topology(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Migration(e) => write!(f, "migration error: {e}"),
            SimError::Placement(e) => write!(f, "placement error: {e}"),
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Wall-clock nanoseconds each epoch phase spent during one hour.
///
/// Only [`simulate_with_faults_observed`] fills these in (`observe =
/// true`); the values are timing — inherently nondeterministic — which is
/// why they live behind an `Option` on [`DegradedHourRecord`] instead of
/// inline fields: unobserved runs stay bit-comparable with `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseNanos {
    /// In-place APSP rebuild of the degraded view (event hours only).
    pub apsp_ns: u64,
    /// Attach-aggregate work: restricted rebuild on event hours, the
    /// incremental delta fold on quiet hours.
    pub aggregates_ns: u64,
    /// The hour's migration-policy solve (0 on repair and blackout hours).
    pub solver_ns: u64,
    /// Placement repair after a failure displaced the chain (0 otherwise).
    pub repair_ns: u64,
}

/// Per-hour degradation telemetry (one record per simulated hour; all
/// fields are zero/false on a fully healthy hour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedHourRecord {
    /// Hour index (1..=N), aligned with [`HourRecord::hour`].
    pub hour: u32,
    /// Switches down during this hour.
    pub failed_switches: usize,
    /// Links down during this hour (switch failures not included).
    pub failed_links: usize,
    /// Flows masked out because an endpoint left the serving component.
    pub stranded_flows: usize,
    /// Total traffic rate those flows would have carried this hour.
    pub stranded_rate: u64,
    /// Extra communication cost the served flows pay over what the same
    /// placement would cost on the healthy fabric (detour penalty).
    pub reroute_cost: Cost,
    /// VNFs moved (or re-instantiated) by placement repair this hour.
    pub recovery_migrations: usize,
    /// The serving component could not even hold the SFC (or no flow was
    /// left to serve) — the hour was skipped.
    pub blackout: bool,
    /// The hour's exact solver returned a best-so-far incumbent after
    /// exhausting its budget instead of a proven optimum.
    pub degraded_solver: bool,
    /// Per-phase wall time, present only on observed runs
    /// ([`simulate_with_faults_observed`] with `observe = true`).
    pub phase: Option<PhaseNanos>,
}

/// A full day of fault-aware simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimResult {
    /// The TOP placement cost at hour 0 (always on the healthy fabric).
    pub initial_cost: Cost,
    /// Hour-by-hour cost records (hours 1..=N).
    pub hours: Vec<HourRecord>,
    /// Hour-by-hour degradation records, aligned with `hours`.
    pub degraded: Vec<DegradedHourRecord>,
    /// Sum of all hourly totals (served cost only; stranded rate is in
    /// [`DegradedHourRecord::stranded_rate`]).
    pub total_cost: Cost,
    /// Policy migrations plus recovery migrations across the day.
    pub total_migrations: usize,
    /// Aggregate builds: 1 for hour 0 plus one per event hour.
    pub aggregate_rebuilds: usize,
    /// Hours skipped entirely (serving component smaller than the SFC, or
    /// every flow stranded).
    pub blackout_hours: usize,
    /// Total VNFs moved by placement repair (subset of
    /// `total_migrations`).
    pub recovery_migrations: usize,
}

/// The serving component's switch candidates and the flow mask it implies.
struct ServingView {
    /// Alive switches of the serving component, in node-id order.
    candidates: Vec<NodeId>,
    /// `cand_mask[n]` ⇔ node `n` is a serving candidate switch.
    cand_mask: Vec<bool>,
    /// `stranded[f]` ⇔ flow `f` has an endpoint outside the component.
    stranded: Vec<bool>,
}

impl ServingView {
    /// Elects the serving component of `g_view` (most alive switches, then
    /// most alive hosts, then lowest component id) and derives the
    /// candidate and stranded masks.
    fn elect(g_view: &Graph, faults: &FaultSet, w: &Workload) -> Self {
        let part = Partition::of(g_view);
        let nc = part.num_components();
        let mut alive_switches = vec![0usize; nc];
        let mut alive_hosts = vec![0usize; nc];
        for n in g_view.nodes() {
            if faults.node_failed(n) {
                continue;
            }
            let c = part.component(n) as usize;
            match g_view.kind(n) {
                NodeKind::Switch => alive_switches[c] += 1,
                NodeKind::Host => alive_hosts[c] += 1,
            }
        }
        let serving = (0..nc)
            .max_by_key(|&c| (alive_switches[c], alive_hosts[c], std::cmp::Reverse(c)))
            .unwrap_or(0) as u32;
        let mut cand_mask = vec![false; g_view.num_nodes()];
        let mut candidates = Vec::new();
        let mut host_ok = vec![false; g_view.num_nodes()];
        for n in g_view.nodes() {
            if faults.node_failed(n) || part.component(n) != serving {
                continue;
            }
            match g_view.kind(n) {
                NodeKind::Switch => {
                    cand_mask[n.index()] = true;
                    candidates.push(n);
                }
                NodeKind::Host => host_ok[n.index()] = true,
            }
        }
        let stranded = w
            .flow_ids()
            .map(|f| {
                let (src, dst) = w.endpoints(f);
                !(host_ok[src.index()] && host_ok[dst.index()])
            })
            .collect();
        ServingView {
            candidates,
            cand_mask,
            stranded,
        }
    }
}

/// Sets hour-`h` rates on `w` with stranded flows masked to zero; returns
/// the total rate masked out.
fn set_masked_rates(
    w: &mut Workload,
    trace: &DynamicTrace,
    h: u32,
    stranded: &[bool],
) -> Result<u64, ModelError> {
    let mut rates = trace.rates_at(h);
    let mut masked = 0u64;
    for (i, r) in rates.iter_mut().enumerate() {
        if stranded.get(i).copied().unwrap_or(false) {
            masked += *r;
            *r = 0;
        }
    }
    w.set_rates(&rates)?;
    Ok(masked)
}

/// Runs one day under fault injection: TOP at hour 0 on the healthy
/// fabric, then every hour applies the schedule's fail/repair events,
/// re-elects the serving component, masks stranded flows, repairs the
/// placement if a failure displaced it, and only then runs the policy.
/// Every policy finishes the day — partitions, blackouts, and solver
/// budget exhaustion degrade the result (see [`DegradedHourRecord`])
/// instead of aborting it.
///
/// Two calls with the same inputs produce bit-identical results.
///
/// # Errors
///
/// Only on genuinely broken inputs (trace/workload shape mismatches,
/// events referencing foreign elements, infeasible MCF) — never because of
/// a failure the schedule injected.
pub fn simulate_with_faults(
    g: &Graph,
    w: &Workload,
    trace: &DynamicTrace,
    sfc: &Sfc,
    cfg: &SimConfig,
    schedule: &FaultSchedule,
) -> Result<FaultSimResult, SimError> {
    simulate_with_faults_observed(g, w, trace, sfc, cfg, schedule, false)
}

/// [`simulate_with_faults`] with phase timing: when `observe` is true,
/// every [`DegradedHourRecord`] carries a [`PhaseNanos`] breaking the hour
/// into APSP rebuild / aggregate / solver / repair wall time, and the run
/// pre-declares and feeds the [`ppdc_obs::global`] registry's epoch
/// metrics (spans, counters, the per-hour solver histogram) so an enabled
/// registry exports a stable-schema summary afterwards.
///
/// Observation never feeds back: costs, placements, and every
/// non-`phase` field are bit-identical to the `observe = false` run.
///
/// # Errors
///
/// Same conditions as [`simulate_with_faults`].
pub fn simulate_with_faults_observed(
    g: &Graph,
    w: &Workload,
    trace: &DynamicTrace,
    sfc: &Sfc,
    cfg: &SimConfig,
    schedule: &FaultSchedule,
    observe: bool,
) -> Result<FaultSimResult, SimError> {
    let obs = ppdc_obs::global();
    if observe {
        obs.declare(obs_names::SPANS, obs_names::COUNTERS, obs_names::HISTS);
    }
    // Stopwatches run when the caller wants per-hour phases OR the global
    // registry wants aggregate spans; either way the readings only ever
    // flow *out* of the simulation.
    let measuring = observe || obs.is_enabled();
    // The healthy-fabric matrix only backs the reroute-penalty baseline,
    // which is consulted on unhealthy hours alone — built lazily so a
    // fault-free schedule never pays this second V² build.
    let mut dm_healthy: Option<DistanceMatrix> = None;
    let mut faults = FaultSet::new(g);
    // The healthy degraded view re-adds every edge in original order, so
    // `dm_cur` starts bit-identical to `dm_healthy` (and node ids match
    // `g` forever — views never renumber).
    let mut g_view = g.degraded_view(&faults);
    let mut dm_cur = DistanceMatrix::build(&g_view);
    let mut w_cur = w.clone();
    w_cur.set_rates(&trace.rates_at(0))?;
    let mut agg = AttachAggregates::build(&g_view, &dm_cur, &w_cur);
    let mut aggregate_rebuilds = 1usize;
    // One metric closure serves every Algorithm 3 / mPareto call between
    // fault events: only event hours change `dm_cur` or the candidate set,
    // so only they invalidate it (the small-n paths never touch it).
    let mut closure_cache = CachedClosure::new();
    let use_closure = sfc.len() >= 3;
    let (mut p, initial_cost) = if use_closure {
        let c = closure_cache.get_or_rebuild(&dm_cur, agg.switches());
        dp_placement_with_closure(&g_view, &dm_cur, &w_cur, sfc, &agg, c)?
    } else {
        dp_placement_with_agg(&g_view, &dm_cur, &w_cur, sfc, &agg)?
    };
    let mut sv = ServingView::elect(&g_view, &faults, &w_cur);

    let maintains_agg = matches!(
        cfg.policy,
        MigrationPolicy::MPareto
            | MigrationPolicy::OptimalVnf { .. }
            | MigrationPolicy::NoMigration
    );
    let n_hours = trace.model().n_hours;
    let mut hours = Vec::with_capacity(n_hours as usize);
    let mut degraded = Vec::with_capacity(n_hours as usize);
    let mut total_cost: Cost = 0;
    let mut total_migrations = 0usize;
    let mut blackout_hours = 0usize;
    let mut recovery_total = 0usize;

    for h in 1..=n_hours {
        let events: Vec<FaultEvent> = schedule.events_at(h).copied().collect();
        let event_hour = !events.is_empty();
        let mut apsp_ns = 0u64;
        let mut aggregates_ns = 0u64;
        let stranded_rate;
        if event_hour {
            let rebuild_sw = Stopwatch::start_if(measuring);
            // Every edge an event can have toggled, with its healthy
            // weight from the original graph; over-listing (a repair of a
            // link whose endpoint switch is still down, say) is harmless —
            // `rebuild_dirty` consults the new view for presence and at
            // worst re-runs a clean row.
            let mut changed: Vec<(NodeId, NodeId, Cost)> = Vec::new();
            for e in &events {
                match e.kind {
                    FaultKind::FailSwitch(s) => {
                        faults.fail_node(s)?;
                        changed.extend(g.neighbors(s).iter().map(|&(v, wv)| (s, v, wv)));
                    }
                    FaultKind::RepairSwitch(s) => {
                        faults.repair_node(s)?;
                        changed.extend(g.neighbors(s).iter().map(|&(v, wv)| (s, v, wv)));
                    }
                    FaultKind::FailLink(l) => {
                        faults.fail_edge(l)?;
                        changed.push(g.edge(l));
                    }
                    FaultKind::RepairLink(l) => {
                        faults.repair_edge(l)?;
                        changed.push(g.edge(l));
                    }
                }
            }
            g_view = g.degraded_view(&faults);
            let apsp_sw = Stopwatch::start_if(measuring);
            dm_cur.rebuild_dirty(&g_view, &changed);
            apsp_ns = apsp_sw.elapsed_ns();
            closure_cache.invalidate();
            sv = ServingView::elect(&g_view, &faults, &w_cur);
            stranded_rate = set_masked_rates(&mut w_cur, trace, h, &sv.stranded)?;
            // The stranded set changed: delta feeds would mix masked and
            // unmasked rates, so rebuild from the serving candidates.
            let agg_sw = Stopwatch::start_if(measuring);
            agg = AttachAggregates::build_restricted(&g_view, &dm_cur, &w_cur, &sv.candidates);
            aggregates_ns = agg_sw.elapsed_ns();
            aggregate_rebuilds += 1;
            obs.record_span_ns(obs_names::SIM_DEGRADED_REBUILD, rebuild_sw.elapsed_ns());
            obs.add(obs_names::SIM_EVENT_HOURS, 1);
        } else if maintains_agg {
            // Quiet hour: the stranded set is unchanged, so the masked
            // rates evolve exactly by the trace's deltas on active flows.
            let deltas: Vec<(FlowId, i64)> = trace
                .rate_deltas(h)
                .into_iter()
                .filter(|(f, _)| !sv.stranded[f.index()])
                .collect();
            stranded_rate = set_masked_rates(&mut w_cur, trace, h, &sv.stranded)?;
            let agg_sw = Stopwatch::start_if(measuring);
            agg.apply_rate_deltas(&dm_cur, &w_cur, &deltas);
            aggregates_ns = agg_sw.elapsed_ns();
        } else {
            stranded_rate = set_masked_rates(&mut w_cur, trace, h, &sv.stranded)?;
        }
        obs.add(obs_names::SIM_HOURS, 1);

        let stranded_flows = sv.stranded.iter().filter(|&&s| s).count();
        obs.add(obs_names::SIM_STRANDED_FLOW_HOURS, stranded_flows as u64);
        let any_traffic = w_cur.rates().iter().any(|&r| r > 0);
        let blackout = sv.candidates.len() < sfc.len();
        if blackout || !any_traffic {
            // Nothing can be (or needs to be) served this hour.
            blackout_hours += 1;
            obs.add(obs_names::SIM_BLACKOUT_HOURS, 1);
            hours.push(HourRecord {
                hour: h,
                migration_cost: 0,
                comm_cost: 0,
                total_cost: 0,
                num_migrations: 0,
            });
            degraded.push(DegradedHourRecord {
                hour: h,
                failed_switches: faults.num_failed_nodes(),
                failed_links: faults.num_failed_edges(),
                stranded_flows,
                stranded_rate,
                reroute_cost: 0,
                recovery_migrations: 0,
                blackout: true,
                degraded_solver: false,
                phase: observe.then_some(PhaseNanos {
                    apsp_ns,
                    aggregates_ns,
                    solver_ns: 0,
                    repair_ns: 0,
                }),
            });
            continue;
        }

        let needs_repair = p.switches().iter().any(|s| !sv.cand_mask[s.index()]);
        let recovery_migrations;
        let mut degraded_solver = false;
        let solve_sw = Stopwatch::start_if(measuring);
        let rec = if needs_repair {
            // Recovery: re-place inside the serving component before any
            // policy gets to run; the hour's migration budget is spent on
            // getting the chain back up.
            let (p_new, comm) = if use_closure {
                let c = closure_cache.get_or_rebuild(&dm_cur, agg.switches());
                dp_placement_with_closure(&g_view, &dm_cur, &w_cur, sfc, &agg, c)?
            } else {
                dp_placement_with_agg(&g_view, &dm_cur, &w_cur, sfc, &agg)?
            };
            let reinstantiate = dm_cur.diameter();
            let mut migration_cost: Cost = 0;
            let mut moved = 0usize;
            for (&old, &new) in p.switches().iter().zip(p_new.switches()) {
                if old == new {
                    continue;
                }
                moved += 1;
                let d = dm_cur.cost(old, new);
                let hop = if d >= INFINITY { reinstantiate } else { d };
                migration_cost = migration_cost.saturating_add(cfg.mu.saturating_mul(hop));
            }
            p = p_new;
            recovery_migrations = moved;
            recovery_total += moved;
            HourRecord {
                hour: h,
                migration_cost,
                comm_cost: comm,
                total_cost: migration_cost.saturating_add(comm),
                num_migrations: moved,
            }
        } else {
            recovery_migrations = 0;
            match cfg.policy {
                MigrationPolicy::MPareto => {
                    let out = if use_closure {
                        let c = closure_cache.get_or_rebuild(&dm_cur, agg.switches());
                        mpareto_with_closure(&g_view, &dm_cur, &w_cur, sfc, &p, cfg.mu, &agg, c)?
                    } else {
                        mpareto_with_agg(&g_view, &dm_cur, &w_cur, sfc, &p, cfg.mu, &agg)?
                    };
                    p = out.migration.clone();
                    HourRecord {
                        hour: h,
                        migration_cost: out.migration_cost,
                        comm_cost: out.comm_cost,
                        total_cost: out.total_cost,
                        num_migrations: out.num_migrations,
                    }
                }
                MigrationPolicy::OptimalVnf { budget } => {
                    let seed = if use_closure {
                        let c = closure_cache.get_or_rebuild(&dm_cur, agg.switches());
                        mpareto_with_closure(&g_view, &dm_cur, &w_cur, sfc, &p, cfg.mu, &agg, c)?
                    } else {
                        mpareto_with_agg(&g_view, &dm_cur, &w_cur, sfc, &p, cfg.mu, &agg)?
                    };
                    let (out, exactness) = optimal_migration_with_deadline(
                        &g_view,
                        &dm_cur,
                        sfc,
                        &p,
                        cfg.mu,
                        Some(&seed.migration),
                        budget,
                        &agg,
                    )?;
                    degraded_solver = !exactness.is_exact();
                    p = out.migration.clone();
                    HourRecord {
                        hour: h,
                        migration_cost: out.migration_cost,
                        comm_cost: out.comm_cost,
                        total_cost: out.total_cost,
                        num_migrations: out.num_migrations,
                    }
                }
                MigrationPolicy::Plan { slots, passes } => {
                    let out =
                        plan_vm_migration(&g_view, &dm_cur, &w_cur, &p, cfg.vm_mu, slots, passes);
                    w_cur = out.workload.clone();
                    HourRecord {
                        hour: h,
                        migration_cost: out.migration_cost,
                        comm_cost: out.comm_cost,
                        total_cost: out.total_cost,
                        num_migrations: out.num_migrations,
                    }
                }
                MigrationPolicy::Mcf { slots, candidates } => {
                    let out = mcf_vm_migration(
                        &g_view, &dm_cur, &w_cur, &p, cfg.vm_mu, slots, candidates,
                    )?;
                    w_cur = out.workload.clone();
                    HourRecord {
                        hour: h,
                        migration_cost: out.migration_cost,
                        comm_cost: out.comm_cost,
                        total_cost: out.total_cost,
                        num_migrations: out.num_migrations,
                    }
                }
                MigrationPolicy::NoMigration => {
                    let c = no_migration_with_agg(&dm_cur, &agg, &p);
                    HourRecord {
                        hour: h,
                        migration_cost: 0,
                        comm_cost: c,
                        total_cost: c,
                        num_migrations: 0,
                    }
                }
            }
        };

        let solve_ns = solve_sw.elapsed_ns();
        let (solver_ns, repair_ns) = if needs_repair {
            obs.record_span_ns(obs_names::SIM_REPAIR, solve_ns);
            obs.add(
                obs_names::SIM_RECOVERY_MIGRATIONS,
                recovery_migrations as u64,
            );
            (0, solve_ns)
        } else {
            obs.record_hist(obs_names::SIM_HOUR_SOLVER_NS, solve_ns);
            (solve_ns, 0)
        };

        // Detour penalty: what the served flows pay on the degraded fabric
        // over the same placement on the healthy one.
        let reroute_cost = if faults.is_healthy() {
            0
        } else {
            let dmh = dm_healthy.get_or_insert_with(|| DistanceMatrix::build(g));
            rec.total_cost
                .saturating_sub(rec.migration_cost)
                .saturating_sub(comm_cost(dmh, &w_cur, &p))
        };
        total_cost = total_cost.saturating_add(rec.total_cost);
        total_migrations += rec.num_migrations;
        hours.push(rec);
        degraded.push(DegradedHourRecord {
            hour: h,
            failed_switches: faults.num_failed_nodes(),
            failed_links: faults.num_failed_edges(),
            stranded_flows,
            stranded_rate,
            reroute_cost,
            recovery_migrations,
            blackout: false,
            degraded_solver,
            phase: observe.then_some(PhaseNanos {
                apsp_ns,
                aggregates_ns,
                solver_ns,
                repair_ns,
            }),
        });
    }
    Ok(FaultSimResult {
        initial_cost,
        hours,
        degraded,
        total_cost,
        total_migrations,
        aggregate_rebuilds,
        blackout_hours,
        recovery_migrations: recovery_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_topology::FatTree;
    use ppdc_traffic::{DiurnalModel, DynamicTrace, DEFAULT_MIX, STANDARD_CHURN};

    /// A 24-hour trace over the standard workload (standard_workload
    /// hard-codes the 12-hour default model).
    fn day24(num_pairs: usize, seed: u64) -> (FatTree, Workload, DynamicTrace) {
        let ft = FatTree::build(4).unwrap();
        let (w, _) = ppdc_traffic::standard_workload(&ft, num_pairs, seed, 0);
        let mut rng = rng_for_run(seed, 1);
        let half = ft.num_racks() / 2;
        let east: Vec<bool> = w
            .flow_ids()
            .map(|f| {
                let (src, _) = w.endpoints(f);
                ft.rack_of(src) < half
            })
            .collect();
        let model = DiurnalModel {
            n_hours: 24,
            ..DiurnalModel::default()
        };
        let trace =
            DynamicTrace::with_cohorts(&w, model, &DEFAULT_MIX, STANDARD_CHURN, east, &mut rng);
        (ft, w, trace)
    }

    fn cfg(policy: MigrationPolicy) -> SimConfig {
        SimConfig {
            mu: 100,
            vm_mu: 100,
            policy,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_repairs_lag_failures() {
        let ft = FatTree::build(4).unwrap();
        let c = FaultConfig {
            link_fail_per_hour: 0.05,
            switch_fail_per_hour: 0.02,
            repair_after: 2,
        };
        let a = FaultSchedule::generate(ft.graph(), 24, &c, 7);
        let b = FaultSchedule::generate(ft.graph(), 24, &c, 7);
        assert_eq!(a, b);
        assert!(a.num_fail_events() >= 3, "48 edges × 24 h at 5 % must fail");
        let other = FaultSchedule::generate(ft.graph(), 24, &c, 8);
        assert_ne!(a, other, "different seeds give different schedules");
        // Every repair is exactly repair_after hours after a matching
        // failure of the same element.
        for e in a.events() {
            if let FaultKind::RepairLink(l) = e.kind {
                assert!(
                    a.events()
                        .iter()
                        .any(|f| f.kind == FaultKind::FailLink(l)
                            && f.hour + c.repair_after == e.hour)
                );
            }
        }
        // Within an hour repairs sort ahead of failures.
        for pair in a.events().windows(2) {
            if pair[0].hour == pair[1].hour {
                assert!(pair[0].kind.is_failure() <= pair[1].kind.is_failure());
            }
        }
    }

    #[test]
    fn every_policy_survives_a_faulty_day() {
        let (ft, w, trace) = day24(40, 11);
        let fc = FaultConfig {
            link_fail_per_hour: 0.04,
            switch_fail_per_hour: 0.01,
            repair_after: 3,
        };
        let schedule = FaultSchedule::generate(ft.graph(), 24, &fc, 11);
        assert!(
            schedule.num_fail_events() >= 3,
            "acceptance: at least 3 injected failures, got {}",
            schedule.num_fail_events()
        );
        let sfc = Sfc::of_len(3).unwrap();
        for policy in [
            MigrationPolicy::MPareto,
            MigrationPolicy::OptimalVnf { budget: 200_000 },
            MigrationPolicy::Plan {
                slots: 4,
                passes: 5,
            },
            MigrationPolicy::Mcf {
                slots: 4,
                candidates: 8,
            },
            MigrationPolicy::NoMigration,
        ] {
            let r = simulate_with_faults(ft.graph(), &w, &trace, &sfc, &cfg(policy), &schedule)
                .unwrap_or_else(|e| panic!("{policy:?} died: {e}"));
            assert_eq!(r.hours.len(), 24, "{policy:?}");
            assert_eq!(r.degraded.len(), 24, "{policy:?}");
            assert!(
                r.aggregate_rebuilds > 1,
                "{policy:?} must rebuild on event hours"
            );
            for (rec, d) in r.hours.iter().zip(&r.degraded) {
                assert_eq!(rec.hour, d.hour);
                assert_eq!(rec.total_cost, rec.migration_cost + rec.comm_cost);
            }
        }
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let (ft, w, trace) = day24(30, 5);
        let fc = FaultConfig {
            link_fail_per_hour: 0.06,
            switch_fail_per_hour: 0.02,
            repair_after: 2,
        };
        let schedule = FaultSchedule::generate(ft.graph(), 24, &fc, 5);
        assert!(schedule.num_fail_events() >= 3);
        let sfc = Sfc::of_len(3).unwrap();
        for policy in [
            MigrationPolicy::MPareto,
            MigrationPolicy::Plan {
                slots: 4,
                passes: 3,
            },
            MigrationPolicy::NoMigration,
        ] {
            let a = simulate_with_faults(ft.graph(), &w, &trace, &sfc, &cfg(policy), &schedule)
                .unwrap();
            let b = simulate_with_faults(ft.graph(), &w, &trace, &sfc, &cfg(policy), &schedule)
                .unwrap();
            assert_eq!(a, b, "{policy:?} must be bit-identical across runs");
        }
    }

    #[test]
    fn observing_changes_timings_only_never_costs() {
        // Acceptance: a metrics-enabled run is bit-identical to a plain
        // one in every decision-bearing field; only the `phase` timing
        // option differs (None vs Some).
        let (ft, w, trace) = day24(30, 5);
        let fc = FaultConfig {
            link_fail_per_hour: 0.06,
            switch_fail_per_hour: 0.02,
            repair_after: 2,
        };
        let schedule = FaultSchedule::generate(ft.graph(), 24, &fc, 5);
        let sfc = Sfc::of_len(3).unwrap();
        let c = cfg(MigrationPolicy::MPareto);
        let plain = simulate_with_faults(ft.graph(), &w, &trace, &sfc, &c, &schedule).unwrap();
        let observed =
            simulate_with_faults_observed(ft.graph(), &w, &trace, &sfc, &c, &schedule, true)
                .unwrap();
        assert_eq!(plain.initial_cost, observed.initial_cost);
        assert_eq!(plain.total_cost, observed.total_cost);
        assert_eq!(plain.hours, observed.hours);
        assert_eq!(plain.total_migrations, observed.total_migrations);
        assert_eq!(plain.aggregate_rebuilds, observed.aggregate_rebuilds);
        assert_eq!(plain.blackout_hours, observed.blackout_hours);
        assert_eq!(plain.recovery_migrations, observed.recovery_migrations);
        assert_eq!(plain.degraded.len(), observed.degraded.len());
        for (a, b) in plain.degraded.iter().zip(&observed.degraded) {
            assert_eq!(a.phase, None, "plain runs carry no timing");
            assert!(b.phase.is_some(), "observed runs time every hour");
            assert_eq!(*a, DegradedHourRecord { phase: None, ..*b });
        }
    }

    #[test]
    fn no_faults_reduces_to_the_seed_loop() {
        let ft = FatTree::build(4).unwrap();
        let (w, trace) = ppdc_traffic::standard_workload(&ft, 50, 3, 0);
        let sfc = Sfc::of_len(3).unwrap();
        let schedule = FaultSchedule::new(Vec::new(), trace.model().n_hours);
        let c = cfg(MigrationPolicy::MPareto);
        let r = simulate_with_faults(ft.graph(), &w, &trace, &sfc, &c, &schedule).unwrap();
        let dm = DistanceMatrix::build(ft.graph());
        let base = crate::simulate(ft.graph(), &dm, &w, &trace, &sfc, &c).unwrap();
        assert_eq!(r.initial_cost, base.initial_cost);
        assert_eq!(r.total_cost, base.total_cost);
        assert_eq!(r.hours, base.hours);
        assert_eq!(r.aggregate_rebuilds, 1);
        assert_eq!(r.blackout_hours, 0);
        assert!(r.degraded.iter().all(|d| d.stranded_flows == 0
            && d.reroute_cost == 0
            && !d.blackout
            && d.recovery_migrations == 0));
    }

    #[test]
    fn tor_failure_strands_its_rack_and_recovers_on_repair() {
        // Fail one top-of-rack switch for two hours: its rack's flows are
        // stranded, the rest keep flowing, and repair restores everyone.
        let ft = FatTree::build(4).unwrap();
        let g = ft.graph();
        let (w, trace) = ppdc_traffic::standard_workload(&ft, 40, 9, 0);
        let sfc = Sfc::of_len(3).unwrap();
        let host0: NodeId = g.hosts().next().unwrap();
        let tor = g.top_of_rack(host0).unwrap();
        let schedule = FaultSchedule::new(
            vec![
                FaultEvent {
                    hour: 3,
                    kind: FaultKind::FailSwitch(tor),
                },
                FaultEvent {
                    hour: 5,
                    kind: FaultKind::RepairSwitch(tor),
                },
            ],
            trace.model().n_hours,
        );
        let r = simulate_with_faults(
            g,
            &w,
            &trace,
            &sfc,
            &cfg(MigrationPolicy::MPareto),
            &schedule,
        )
        .unwrap();
        // Hours 3 and 4 run degraded; hour 5 is healthy again.
        let d3 = &r.degraded[2];
        assert_eq!(d3.failed_switches, 1);
        let d5 = &r.degraded[4];
        assert_eq!(d5.failed_switches, 0);
        assert_eq!(d5.stranded_flows, 0);
        // A k=4 fat tree keeps all hosts of other racks connected: flows
        // not touching the dead ToR's rack keep flowing.
        let rack_flows = w
            .flow_ids()
            .filter(|&f| {
                let (s, d) = w.endpoints(f);
                g.top_of_rack(s) == Some(tor) || g.top_of_rack(d) == Some(tor)
            })
            .count();
        assert_eq!(d3.stranded_flows, rack_flows);
        assert!(r.aggregate_rebuilds >= 3, "hour 0 + two event hours");
    }

    #[test]
    fn event_hour_aggregates_match_the_flow_by_flow_oracle() {
        // Rebuilt restricted aggregates on a degraded view must equal the
        // flow-by-flow oracle over the same candidates (acceptance item).
        let ft = FatTree::build(4).unwrap();
        let g = ft.graph();
        let (w, trace) = ppdc_traffic::standard_workload(&ft, 40, 13, 0);
        let mut faults = FaultSet::new(g);
        let tor = g.top_of_rack(g.hosts().next().unwrap()).unwrap();
        faults.fail_node(tor).unwrap();
        faults.fail_edge(EdgeId(0)).unwrap();
        let g_view = g.degraded_view(&faults);
        let dm = DistanceMatrix::build(&g_view);
        let mut w_cur = w.clone();
        let sv = ServingView::elect(&g_view, &faults, &w_cur);
        set_masked_rates(&mut w_cur, &trace, 2, &sv.stranded).unwrap();
        let fast = AttachAggregates::build_restricted(&g_view, &dm, &w_cur, &sv.candidates);
        let oracle =
            AttachAggregates::build_restricted_flow_by_flow(&g_view, &dm, &w_cur, &sv.candidates);
        assert!(fast.same_as(&oracle));
    }

    #[test]
    fn losing_a_placement_switch_triggers_recovery_not_a_crash() {
        let ft = FatTree::build(4).unwrap();
        let g = ft.graph();
        let (w, trace) = ppdc_traffic::standard_workload(&ft, 40, 21, 0);
        let sfc = Sfc::of_len(3).unwrap();
        // Find the initial placement, then fail its first switch at hour 2.
        let dm = DistanceMatrix::build(g);
        let mut w0 = w.clone();
        w0.set_rates(&trace.rates_at(0)).unwrap();
        let (p0, _) = ppdc_placement::dp_placement(g, &dm, &w0, &sfc).unwrap();
        let victim = p0.switch(0);
        let schedule = FaultSchedule::new(
            vec![FaultEvent {
                hour: 2,
                kind: FaultKind::FailSwitch(victim),
            }],
            trace.model().n_hours,
        );
        for policy in [
            MigrationPolicy::MPareto,
            MigrationPolicy::NoMigration,
            MigrationPolicy::Plan {
                slots: 4,
                passes: 3,
            },
        ] {
            let r = simulate_with_faults(g, &w, &trace, &sfc, &cfg(policy), &schedule).unwrap();
            let d2 = &r.degraded[1];
            assert!(
                d2.recovery_migrations > 0,
                "{policy:?}: hour 2 must repair the placement"
            );
            assert!(
                r.hours[1].migration_cost > 0,
                "{policy:?}: recovery is paid"
            );
            assert_eq!(r.recovery_migrations, d2.recovery_migrations);
        }
    }

    #[test]
    fn budget_exhaustion_degrades_instead_of_failing() {
        let (ft, w, trace) = day24(40, 17);
        let sfc = Sfc::of_len(3).unwrap();
        let schedule = FaultSchedule::new(Vec::new(), 24);
        // Budget 1 exhausts instantly every hour; the day must still
        // complete, flagged degraded, with costs no better than mPareto's
        // incumbent would allow and no worse than staying put.
        let r = simulate_with_faults(
            ft.graph(),
            &w,
            &trace,
            &sfc,
            &cfg(MigrationPolicy::OptimalVnf { budget: 1 }),
            &schedule,
        )
        .unwrap();
        assert_eq!(r.hours.len(), 24);
        assert!(r.degraded.iter().any(|d| d.degraded_solver));
        let stay = simulate_with_faults(
            ft.graph(),
            &w,
            &trace,
            &sfc,
            &cfg(MigrationPolicy::NoMigration),
            &schedule,
        )
        .unwrap();
        assert!(r.total_cost <= stay.total_cost);
    }

    #[test]
    fn total_fabric_loss_is_a_blackout_not_a_panic() {
        // Fail every switch: no serving component can hold the SFC.
        let ft = FatTree::build(4).unwrap();
        let g = ft.graph();
        let (w, trace) = ppdc_traffic::standard_workload(&ft, 20, 2, 0);
        let sfc = Sfc::of_len(3).unwrap();
        let events: Vec<FaultEvent> = g
            .switches()
            .map(|s| FaultEvent {
                hour: 4,
                kind: FaultKind::FailSwitch(s),
            })
            .collect();
        let schedule = FaultSchedule::new(events, trace.model().n_hours);
        let r = simulate_with_faults(
            g,
            &w,
            &trace,
            &sfc,
            &cfg(MigrationPolicy::MPareto),
            &schedule,
        )
        .unwrap();
        assert!(r.blackout_hours > 0);
        let d4 = &r.degraded[3];
        assert!(d4.blackout);
        // With every switch dead the serving "component" is one lone host:
        // only flows whose both VMs sit on that host escape stranding.
        let colocated = w
            .flow_ids()
            .filter(|&f| {
                let (s, d) = w.endpoints(f);
                s == d
            })
            .count();
        assert!(d4.stranded_flows >= w.num_flows() - colocated);
        assert_eq!(r.hours[3].total_cost, 0);
    }
}
