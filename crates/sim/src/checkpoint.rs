//! Crash-safe epoch checkpoints (`ppdc-ckpt/v1`).
//!
//! A [`Checkpoint`] freezes everything [`crate::run_day`] needs to restart
//! a fault-aware day from the last completed hour and finish it
//! **bit-identically** to the uninterrupted run: the incumbent placement,
//! the workload's current VM hosts and (masked) flow rates, the fault set,
//! the elected serving view, every accumulated per-hour record, and the
//! running totals. Derived state is deliberately *not* stored — the
//! distance matrix, metric closure, and attach aggregates are recomputed
//! on restore, and PR 1/PR 5's bit-identity guarantees (delta-fed
//! aggregates ≡ rebuilds, dirty-row APSP ≡ full rebuilds) make the
//! reconstruction exact.
//!
//! There is no RNG position to save: the fault schedule and traffic trace
//! are generated *before* the day starts, so the epoch loop itself never
//! draws randomness. Instead the checkpoint carries a [`fingerprint`] of
//! every input (graph, workload, trace rates, SFC, config, schedule) and
//! restore refuses a snapshot whose fingerprint does not match — resuming
//! against different inputs cannot silently produce a franken-day.
//!
//! [`CheckpointStore`] writes snapshots atomically (tmp + fsync + rename)
//! and keeps the previous snapshot as a `.prev` fallback, so a crash *mid
//! write* — a torn or truncated primary file — still recovers from the
//! last good hour.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ppdc_model::{Sfc, Workload};
use ppdc_obs::json::{self, Value};
use ppdc_obs::{names as obs_names, Stopwatch};
use ppdc_topology::{Cost, EdgeId, Graph, NodeId};
use ppdc_traffic::DynamicTrace;

use crate::fault::{DegradedHourRecord, FaultSchedule, HourProvenance};
use crate::simulator::{HourRecord, MigrationPolicy, SimConfig};

/// Version tag every snapshot carries; restore rejects anything else.
pub const CKPT_SCHEMA: &str = "ppdc-ckpt/v1";

/// Errors from writing, reading, or validating a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// A filesystem operation failed (`op` is `read`/`write`/`rename`/…).
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The path it failed on.
        path: String,
        /// The OS error message.
        msg: String,
    },
    /// The file held no parseable JSON document — the classic torn write.
    Parse(String),
    /// The document parsed but is not a `ppdc-ckpt/v1` snapshot.
    Schema(String),
    /// A field is missing, has the wrong type, or holds an impossible
    /// value (id out of range, mismatched array length, …).
    Corrupt(String),
    /// The snapshot was taken from different inputs than the resume call's
    /// (graph / workload / trace / config / schedule fingerprint differs).
    InputMismatch {
        /// Fingerprint stored in the snapshot.
        stored: u64,
        /// Fingerprint of the inputs handed to resume.
        expected: u64,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { op, path, msg } => {
                write!(f, "checkpoint {op} failed for {path}: {msg}")
            }
            CkptError::Parse(msg) => write!(f, "torn or invalid checkpoint: {msg}"),
            CkptError::Schema(found) => {
                write!(f, "checkpoint schema {found:?}, expected {CKPT_SCHEMA:?}")
            }
            CkptError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CkptError::InputMismatch { stored, expected } => write!(
                f,
                "checkpoint was taken from different inputs \
                 (fingerprint {stored:#018x}, expected {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

/// A frozen mid-day simulator state: everything mutable the epoch loop
/// carries across hours, plus the accumulated day records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// FNV-1a hash of every input (see [`fingerprint`]).
    pub fingerprint: u64,
    /// The last *completed* hour; resume continues at `hour + 1`.
    pub hour: u32,
    /// The TOP placement cost at hour 0.
    pub initial_cost: Cost,
    /// The incumbent placement's switches, in SFC order.
    pub placement: Vec<NodeId>,
    /// Current host of every VM (PLAN/MCF move VMs mid-day).
    pub hosts: Vec<NodeId>,
    /// Current per-flow rates, stranded flows already masked to zero.
    pub rates: Vec<u64>,
    /// Switches down at end of `hour`, in id order.
    pub failed_nodes: Vec<NodeId>,
    /// Explicitly failed links at end of `hour`, in id order.
    pub failed_edges: Vec<EdgeId>,
    /// The serving component's candidate switches, in id order. Stored
    /// rather than re-derived: stranding was computed against the VM
    /// endpoints of the *election* hour, which VM migration may since have
    /// changed.
    pub candidates: Vec<NodeId>,
    /// Per-flow stranded mask of the serving view.
    pub stranded: Vec<bool>,
    /// Hour records accumulated so far (hours `1..=hour`).
    pub hours: Vec<HourRecord>,
    /// Degradation records accumulated so far. Phase timings are not
    /// persisted (they are wall-clock noise); restored records carry
    /// `phase: None`.
    pub degraded: Vec<DegradedHourRecord>,
    /// Running served-cost total.
    pub total_cost: Cost,
    /// Running migration count (policy + recovery).
    pub total_migrations: usize,
    /// Aggregate builds so far (hour 0 plus event hours).
    pub aggregate_rebuilds: usize,
    /// Hours skipped as blackouts so far.
    pub blackout_hours: usize,
    /// Recovery migrations so far.
    pub recovery_migrations: usize,
}

fn push_ids(out: &mut String, key: &str, ids: &[u32]) {
    out.push_str(&format!("  \"{key}\": ["));
    for (i, v) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("],\n");
}

fn prov_code(p: HourProvenance) -> u64 {
    match p {
        HourProvenance::Exact => 0,
        HourProvenance::DegradedDeadline => 1,
        HourProvenance::LastKnownGood => 2,
        HourProvenance::Blackout => 3,
    }
}

fn prov_from_code(c: u64) -> Result<HourProvenance, CkptError> {
    match c {
        0 => Ok(HourProvenance::Exact),
        1 => Ok(HourProvenance::DegradedDeadline),
        2 => Ok(HourProvenance::LastKnownGood),
        3 => Ok(HourProvenance::Blackout),
        _ => Err(CkptError::Corrupt(format!("unknown provenance code {c}"))),
    }
}

impl Checkpoint {
    /// Serializes to the deterministic `ppdc-ckpt/v1` JSON document. Two
    /// equal checkpoints always produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{CKPT_SCHEMA}\",\n"));
        out.push_str(&format!("  \"fingerprint\": {},\n", self.fingerprint));
        out.push_str(&format!("  \"hour\": {},\n", self.hour));
        out.push_str(&format!("  \"initial_cost\": {},\n", self.initial_cost));
        let ids = |v: &[NodeId]| v.iter().map(|n| n.0).collect::<Vec<u32>>();
        push_ids(&mut out, "placement", &ids(&self.placement));
        push_ids(&mut out, "hosts", &ids(&self.hosts));
        out.push_str("  \"rates\": [");
        for (i, r) in self.rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_string());
        }
        out.push_str("],\n");
        push_ids(&mut out, "failed_nodes", &ids(&self.failed_nodes));
        push_ids(
            &mut out,
            "failed_edges",
            &self.failed_edges.iter().map(|e| e.0).collect::<Vec<u32>>(),
        );
        push_ids(&mut out, "candidates", &ids(&self.candidates));
        out.push_str("  \"stranded\": [");
        for (i, s) in self.stranded.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push(if *s { '1' } else { '0' });
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"totals\": {{\"total_cost\": {}, \"total_migrations\": {}, \
             \"aggregate_rebuilds\": {}, \"blackout_hours\": {}, \
             \"recovery_migrations\": {}}},\n",
            self.total_cost,
            self.total_migrations,
            self.aggregate_rebuilds,
            self.blackout_hours,
            self.recovery_migrations
        ));
        // Hour records as compact rows:
        // [hour, migration_cost, comm_cost, total_cost, num_migrations].
        out.push_str("  \"hours\": [");
        for (i, r) in self.hours.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{},{},{},{}]",
                r.hour, r.migration_cost, r.comm_cost, r.total_cost, r.num_migrations
            ));
        }
        out.push_str("],\n");
        // Degraded records as compact rows: [hour, failed_switches,
        // failed_links, stranded_flows, stranded_rate, reroute_cost,
        // recovery_migrations, blackout, degraded_solver, provenance,
        // solver_retries].
        out.push_str("  \"degraded\": [");
        for (i, d) in self.degraded.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{},{},{},{},{},{},{},{},{},{}]",
                d.hour,
                d.failed_switches,
                d.failed_links,
                d.stranded_flows,
                d.stranded_rate,
                d.reroute_cost,
                d.recovery_migrations,
                u8::from(d.blackout),
                u8::from(d.degraded_solver),
                prov_code(d.provenance),
                d.solver_retries
            ));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a `ppdc-ckpt/v1` document.
    ///
    /// # Errors
    ///
    /// [`CkptError::Parse`] on torn/invalid JSON, [`CkptError::Schema`] on
    /// a foreign document, [`CkptError::Corrupt`] on missing or malformed
    /// fields. Semantic validation against the run inputs happens
    /// separately in [`Checkpoint::validate_against`].
    pub fn from_json(src: &str) -> Result<Self, CkptError> {
        let v = json::parse(src).map_err(|e| CkptError::Parse(e.to_string()))?;
        let top = as_obj(&v, "document")?;
        match str_field(top, "schema") {
            Ok(s) if s == CKPT_SCHEMA => {}
            Ok(s) => return Err(CkptError::Schema(s.to_string())),
            Err(_) => return Err(CkptError::Schema("<missing>".to_string())),
        }
        let totals = as_obj(field(top, "totals")?, "totals")?;
        let hours = arr_field(top, "hours")?
            .iter()
            .map(|row| {
                let r = row_u64(row, 5, "hours")?;
                Ok(HourRecord {
                    hour: to_u32(r[0], "hour")?,
                    migration_cost: r[1],
                    comm_cost: r[2],
                    total_cost: r[3],
                    num_migrations: to_usize(r[4])?,
                })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        let degraded = arr_field(top, "degraded")?
            .iter()
            .map(|row| {
                let r = row_u64(row, 11, "degraded")?;
                Ok(DegradedHourRecord {
                    hour: to_u32(r[0], "hour")?,
                    failed_switches: to_usize(r[1])?,
                    failed_links: to_usize(r[2])?,
                    stranded_flows: to_usize(r[3])?,
                    stranded_rate: r[4],
                    reroute_cost: r[5],
                    recovery_migrations: to_usize(r[6])?,
                    blackout: r[7] != 0,
                    degraded_solver: r[8] != 0,
                    provenance: prov_from_code(r[9])?,
                    solver_retries: to_u32(r[10], "solver_retries")?,
                    phase: None,
                })
            })
            .collect::<Result<Vec<_>, CkptError>>()?;
        Ok(Checkpoint {
            fingerprint: u64_field(top, "fingerprint")?,
            hour: to_u32(u64_field(top, "hour")?, "hour")?,
            initial_cost: u64_field(top, "initial_cost")?,
            placement: node_ids(top, "placement")?,
            hosts: node_ids(top, "hosts")?,
            rates: u64_arr(arr_field(top, "rates")?, "rates")?,
            failed_nodes: node_ids(top, "failed_nodes")?,
            failed_edges: u64_arr(arr_field(top, "failed_edges")?, "failed_edges")?
                .into_iter()
                .map(|x| Ok(EdgeId(to_u32(x, "failed_edges")?)))
                .collect::<Result<Vec<_>, CkptError>>()?,
            candidates: node_ids(top, "candidates")?,
            stranded: u64_arr(arr_field(top, "stranded")?, "stranded")?
                .into_iter()
                .map(|x| x != 0)
                .collect(),
            hours,
            degraded,
            total_cost: u64_field(totals, "total_cost")?,
            total_migrations: to_usize(u64_field(totals, "total_migrations")?)?,
            aggregate_rebuilds: to_usize(u64_field(totals, "aggregate_rebuilds")?)?,
            blackout_hours: to_usize(u64_field(totals, "blackout_hours")?)?,
            recovery_migrations: to_usize(u64_field(totals, "recovery_migrations")?)?,
        })
    }

    /// Semantic validation against the inputs of the run being resumed:
    /// fingerprint match, hour within the day, every array shaped for this
    /// graph/workload/SFC, every id in range.
    ///
    /// # Errors
    ///
    /// [`CkptError::InputMismatch`] or [`CkptError::Corrupt`].
    pub fn validate_against(
        &self,
        g: &Graph,
        w: &Workload,
        sfc: &Sfc,
        n_hours: u32,
        expected_fingerprint: u64,
    ) -> Result<(), CkptError> {
        if self.fingerprint != expected_fingerprint {
            return Err(CkptError::InputMismatch {
                stored: self.fingerprint,
                expected: expected_fingerprint,
            });
        }
        if self.hour == 0 || self.hour > n_hours {
            return Err(CkptError::Corrupt(format!(
                "hour {} outside 1..={n_hours}",
                self.hour
            )));
        }
        let shape = [
            ("placement", self.placement.len(), sfc.len()),
            ("hosts", self.hosts.len(), w.num_vms()),
            ("rates", self.rates.len(), w.num_flows()),
            ("stranded", self.stranded.len(), w.num_flows()),
            ("hours", self.hours.len(), self.hour as usize),
            ("degraded", self.degraded.len(), self.hour as usize),
        ];
        for (name, got, want) in shape {
            if got != want {
                return Err(CkptError::Corrupt(format!(
                    "{name} has {got} entries, expected {want}"
                )));
            }
        }
        let n = g.num_nodes();
        for (name, list) in [
            ("placement", &self.placement),
            ("hosts", &self.hosts),
            ("failed_nodes", &self.failed_nodes),
            ("candidates", &self.candidates),
        ] {
            if let Some(bad) = list.iter().find(|id| id.index() >= n) {
                return Err(CkptError::Corrupt(format!(
                    "{name} references node {} outside the graph",
                    bad.0
                )));
            }
        }
        if let Some(bad) = self
            .failed_edges
            .iter()
            .find(|e| e.index() >= g.num_edges())
        {
            return Err(CkptError::Corrupt(format!(
                "failed_edges references edge {} outside the graph",
                bad.0
            )));
        }
        Ok(())
    }
}

pub(crate) fn as_obj<'a>(
    v: &'a Value,
    what: &str,
) -> Result<&'a BTreeMap<String, Value>, CkptError> {
    v.as_obj()
        .ok_or_else(|| CkptError::Corrupt(format!("{what} is not an object")))
}

pub(crate) fn field<'a>(o: &'a BTreeMap<String, Value>, k: &str) -> Result<&'a Value, CkptError> {
    o.get(k)
        .ok_or_else(|| CkptError::Corrupt(format!("missing field {k:?}")))
}

pub(crate) fn str_field<'a>(o: &'a BTreeMap<String, Value>, k: &str) -> Result<&'a str, CkptError> {
    field(o, k)?
        .as_str()
        .ok_or_else(|| CkptError::Corrupt(format!("field {k:?} is not a string")))
}

pub(crate) fn u64_field(o: &BTreeMap<String, Value>, k: &str) -> Result<u64, CkptError> {
    field(o, k)?
        .as_u64()
        .ok_or_else(|| CkptError::Corrupt(format!("field {k:?} is not a u64")))
}

pub(crate) fn arr_field<'a>(
    o: &'a BTreeMap<String, Value>,
    k: &str,
) -> Result<&'a [Value], CkptError> {
    field(o, k)?
        .as_arr()
        .ok_or_else(|| CkptError::Corrupt(format!("field {k:?} is not an array")))
}

pub(crate) fn u64_arr(vals: &[Value], what: &str) -> Result<Vec<u64>, CkptError> {
    vals.iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| CkptError::Corrupt(format!("{what} holds a non-u64 entry")))
        })
        .collect()
}

pub(crate) fn node_ids(o: &BTreeMap<String, Value>, k: &str) -> Result<Vec<NodeId>, CkptError> {
    u64_arr(arr_field(o, k)?, k)?
        .into_iter()
        .map(|x| Ok(NodeId(to_u32(x, k)?)))
        .collect()
}

pub(crate) fn row_u64(row: &Value, len: usize, what: &str) -> Result<Vec<u64>, CkptError> {
    let arr = row
        .as_arr()
        .ok_or_else(|| CkptError::Corrupt(format!("{what} row is not an array")))?;
    if arr.len() != len {
        return Err(CkptError::Corrupt(format!(
            "{what} row has {} entries, expected {len}",
            arr.len()
        )));
    }
    u64_arr(arr, what)
}

pub(crate) fn to_u32(x: u64, what: &str) -> Result<u32, CkptError> {
    u32::try_from(x).map_err(|_| CkptError::Corrupt(format!("{what} value {x} exceeds u32")))
}

pub(crate) fn to_usize(x: u64) -> Result<usize, CkptError> {
    usize::try_from(x).map_err(|_| CkptError::Corrupt(format!("value {x} exceeds usize")))
}

/// FNV-1a over every input that shapes a fault-aware day. Two runs with
/// equal fingerprints walk bit-identical trajectories, so a checkpoint is
/// resumable exactly when the fingerprints agree.
pub fn fingerprint(
    g: &Graph,
    w: &Workload,
    trace: &DynamicTrace,
    sfc: &Sfc,
    cfg: &SimConfig,
    schedule: &FaultSchedule,
) -> u64 {
    let mut h = Fnv::new();
    h.u64(g.num_nodes() as u64);
    h.u64(g.num_edges() as u64);
    for (u, v, c) in g.edges() {
        h.u64(u64::from(u.0));
        h.u64(u64::from(v.0));
        h.u64(c);
    }
    h.u64(w.num_vms() as u64);
    h.u64(w.num_flows() as u64);
    for v in w.vm_ids() {
        h.u64(u64::from(w.host_of(v).0));
    }
    for f in w.flow_ids() {
        let fl = w.flow(f);
        h.u64(u64::from(fl.src.0));
        h.u64(u64::from(fl.dst.0));
    }
    h.u64(sfc.len() as u64);
    h.u64(cfg.mu);
    h.u64(cfg.vm_mu);
    let (tag, a, b) = match cfg.policy {
        MigrationPolicy::MPareto => (0u64, 0u64, 0u64),
        MigrationPolicy::OptimalVnf { budget } => (1, budget, 0),
        MigrationPolicy::Plan { slots, passes } => (2, slots as u64, passes as u64),
        MigrationPolicy::Mcf { slots, candidates } => (3, slots as u64, candidates as u64),
        MigrationPolicy::NoMigration => (4, 0, 0),
    };
    h.u64(tag);
    h.u64(a);
    h.u64(b);
    let n_hours = schedule.n_hours();
    h.u64(u64::from(n_hours));
    for e in schedule.events() {
        h.u64(u64::from(e.hour));
        let (k, id) = match e.kind {
            crate::fault::FaultKind::FailSwitch(n) => (0u64, u64::from(n.0)),
            crate::fault::FaultKind::RepairSwitch(n) => (1, u64::from(n.0)),
            crate::fault::FaultKind::FailLink(l) => (2, u64::from(l.0)),
            crate::fault::FaultKind::RepairLink(l) => (3, u64::from(l.0)),
        };
        h.u64(k);
        h.u64(id);
    }
    h.u64(u64::from(trace.model().n_hours));
    for hour in 0..=trace.model().n_hours {
        for r in trace.rates_at(hour) {
            h.u64(r);
        }
    }
    h.finish()
}

pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Which on-disk slot a checkpoint was recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptSlot {
    /// The primary file was intact.
    Primary,
    /// The primary file was torn/corrupt; the rotated `.prev` snapshot
    /// (one checkpoint interval older) was used instead.
    Previous,
}

/// Atomic two-slot checkpoint storage.
///
/// Writes go to `<path>.tmp`, are fsynced, and land via rename; the
/// previously-current snapshot is rotated to `<path>.prev` first. A crash
/// at any point leaves at least one loadable snapshot on disk (after the
/// first successful write), and [`CheckpointStore::load`] transparently
/// falls back to the `.prev` slot when the primary is torn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `path` (the primary snapshot file).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointStore { path: path.into() }
    }

    /// The primary snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotated previous-snapshot path (`<path>.prev`).
    pub fn prev_path(&self) -> PathBuf {
        suffixed(&self.path, ".prev")
    }

    /// Atomically persists `ckpt`: serialize to `<path>.tmp`, fsync,
    /// rotate the current primary (if any) to `.prev`, rename the tmp file
    /// into place. Feeds the `ckpt.writes` / `ckpt.write_nanos` counters
    /// of the global obs registry when it is enabled.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] with the failing operation and path.
    pub fn write(&self, ckpt: &Checkpoint) -> Result<(), CkptError> {
        self.write_raw(&ckpt.to_json())
    }

    /// The slot machinery behind [`CheckpointStore::write`], usable with
    /// any serialized snapshot document (the streaming engine persists its
    /// own `ppdc-stream-ckpt/v1` schema through the same store).
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] with the failing operation and path.
    pub fn write_raw(&self, doc: &str) -> Result<(), CkptError> {
        let obs = ppdc_obs::global();
        let sw = Stopwatch::start_if(obs.is_enabled());
        let tmp = suffixed(&self.path, ".tmp");
        let io = |op: &'static str, p: &Path, e: std::io::Error| CkptError::Io {
            op,
            path: p.display().to_string(),
            msg: e.to_string(),
        };
        let mut f = fs::File::create(&tmp).map_err(|e| io("create", &tmp, e))?;
        f.write_all(doc.as_bytes())
            .map_err(|e| io("write", &tmp, e))?;
        f.sync_all().map_err(|e| io("fsync", &tmp, e))?;
        drop(f);
        if self.path.exists() {
            let prev = self.prev_path();
            fs::rename(&self.path, &prev).map_err(|e| io("rotate", &prev, e))?;
        }
        fs::rename(&tmp, &self.path).map_err(|e| io("rename", &self.path, e))?;
        obs.add(obs_names::CKPT_WRITES, 1);
        obs.add(obs_names::CKPT_WRITE_NANOS, sw.elapsed_ns());
        Ok(())
    }

    /// Loads the most recent intact snapshot: the primary if it parses,
    /// else the rotated `.prev` fallback. The returned [`CkptSlot`] says
    /// which one survived.
    ///
    /// # Errors
    ///
    /// The *primary's* error when neither slot holds a loadable snapshot.
    pub fn load(&self) -> Result<(Checkpoint, CkptSlot), CkptError> {
        self.load_with(Checkpoint::from_json)
    }

    /// [`CheckpointStore::load`] generalized over the snapshot parser:
    /// torn-primary detection is the parser failing, so any schema gets
    /// the same two-slot recovery (including the `ckpt.torn_recoveries`
    /// counter on fallback).
    ///
    /// # Errors
    ///
    /// The *primary's* error when neither slot parses.
    pub fn load_with<T>(
        &self,
        parse: impl Fn(&str) -> Result<T, CkptError>,
    ) -> Result<(T, CkptSlot), CkptError> {
        match self.load_slot(&self.path, &parse) {
            Ok(c) => Ok((c, CkptSlot::Primary)),
            Err(primary_err) => match self.load_slot(&self.prev_path(), &parse) {
                Ok(c) => {
                    ppdc_obs::global().add(obs_names::CKPT_TORN_RECOVERIES, 1);
                    Ok((c, CkptSlot::Previous))
                }
                Err(_) => Err(primary_err),
            },
        }
    }

    fn load_slot<T>(
        &self,
        path: &Path,
        parse: impl Fn(&str) -> Result<T, CkptError>,
    ) -> Result<T, CkptError> {
        let src = fs::read_to_string(path).map_err(|e| CkptError::Io {
            op: "read",
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        parse(&src)
    }
}

fn suffixed(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(suffix);
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hour: u32) -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF,
            hour,
            initial_cost: 1234,
            placement: vec![NodeId(4), NodeId(5), NodeId(6)],
            hosts: vec![NodeId(20), NodeId(21)],
            rates: vec![10, 0],
            failed_nodes: vec![NodeId(4)],
            failed_edges: vec![EdgeId(7)],
            candidates: vec![NodeId(5), NodeId(6)],
            stranded: vec![false, true],
            hours: vec![HourRecord {
                hour: 1,
                migration_cost: 3,
                comm_cost: 40,
                total_cost: 43,
                num_migrations: 1,
            }],
            degraded: vec![DegradedHourRecord {
                hour: 1,
                failed_switches: 1,
                failed_links: 1,
                stranded_flows: 1,
                stranded_rate: 5,
                reroute_cost: 2,
                recovery_migrations: 1,
                blackout: false,
                degraded_solver: true,
                provenance: HourProvenance::DegradedDeadline,
                solver_retries: 2,
                phase: None,
            }],
            total_cost: 43,
            total_migrations: 1,
            aggregate_rebuilds: 2,
            blackout_hours: 0,
            recovery_migrations: 1,
        }
    }

    #[test]
    fn json_round_trip_is_lossless_and_deterministic() {
        let c = sample(1);
        let j = c.to_json();
        assert_eq!(j, c.to_json(), "serialization is deterministic");
        let back = Checkpoint::from_json(&j).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn torn_documents_yield_typed_parse_errors() {
        let j = sample(1).to_json();
        for cut in [0, 1, j.len() / 2, j.len() - 2] {
            let torn = &j[..cut];
            assert!(
                matches!(
                    Checkpoint::from_json(torn),
                    Err(CkptError::Parse(_) | CkptError::Schema(_) | CkptError::Corrupt(_))
                ),
                "cut at {cut} must be rejected"
            );
        }
        assert!(matches!(
            Checkpoint::from_json("{\"schema\": \"other/v2\"}"),
            Err(CkptError::Schema(_))
        ));
    }

    #[test]
    fn store_rotates_and_recovers_from_torn_primary() {
        let dir = std::env::temp_dir().join(format!("ppdc-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("day.ckpt"));
        let c1 = sample(1);
        let c2 = sample(2);
        store.write(&c1).unwrap();
        let (got, slot) = store.load().unwrap();
        assert_eq!(slot, CkptSlot::Primary);
        assert_eq!(got, c1);
        store.write(&c2).unwrap();
        // The previous snapshot rotated into the .prev slot.
        assert!(store.prev_path().exists());
        // Tear the primary mid-file: load falls back to hour 1.
        let bytes = fs::read(store.path()).unwrap();
        fs::write(store.path(), &bytes[..bytes.len() / 2]).unwrap();
        let (got, slot) = store.load().unwrap();
        assert_eq!(slot, CkptSlot::Previous);
        assert_eq!(got, c1);
        // Both slots gone: the primary's error surfaces.
        fs::remove_file(store.path()).unwrap();
        fs::remove_file(store.prev_path()).unwrap();
        assert!(matches!(store.load(), Err(CkptError::Io { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_rejects_shape_and_range_violations() {
        use ppdc_topology::FatTree;
        let ft = FatTree::build(2).unwrap();
        let g = ft.graph();
        let mut w = Workload::new();
        let hosts: Vec<NodeId> = g.hosts().collect();
        w.add_pair(hosts[0], hosts[1], 5);
        w.add_pair(hosts[1], hosts[0], 7);
        let sfc = Sfc::of_len(3).unwrap();
        let mut c = sample(1);
        c.hosts = vec![hosts[0], hosts[0], hosts[1], hosts[1]];
        c.placement = vec![NodeId(0), NodeId(1), NodeId(2)];
        c.failed_nodes.clear();
        c.failed_edges.clear();
        c.candidates = vec![NodeId(0)];
        assert!(c.validate_against(g, &w, &sfc, 12, c.fingerprint).is_ok());
        assert!(matches!(
            c.validate_against(g, &w, &sfc, 12, c.fingerprint + 1),
            Err(CkptError::InputMismatch { .. })
        ));
        let mut bad = c.clone();
        bad.hour = 13;
        assert!(matches!(
            bad.validate_against(g, &w, &sfc, 12, c.fingerprint),
            Err(CkptError::Corrupt(_))
        ));
        let mut bad = c.clone();
        bad.rates.push(9);
        assert!(matches!(
            bad.validate_against(g, &w, &sfc, 12, c.fingerprint),
            Err(CkptError::Corrupt(_))
        ));
        let mut bad = c.clone();
        bad.placement[0] = NodeId(10_000);
        assert!(matches!(
            bad.validate_against(g, &w, &sfc, 12, c.fingerprint),
            Err(CkptError::Corrupt(_))
        ));
    }
}
