//! PPDC lifetime simulation (the paper's Fig. 11 experiments).
//!
//! The framework's salient feature is lifetime optimization: **TOP** builds
//! the initial traffic-optimal placement once, then **TOM** runs every hour
//! as the diurnal rate vector shifts. [`simulate`] drives that loop for a
//! chosen [`MigrationPolicy`] — mPareto, exact VNF migration, the PLAN/MCF
//! VM-migration baselines, or NoMigration — and records per-hour costs and
//! migration counts.
//!
//! [`stats`] provides the 20-run mean / 95 % confidence-interval summaries
//! every plotted data point uses; [`report`] renders aligned tables and CSV
//! for the experiment binaries.

pub mod report;
pub mod simulator;
pub mod stats;

pub use report::Table;
pub use simulator::{simulate, HourRecord, MigrationPolicy, SimConfig, SimResult};
pub use stats::{summarize, Summary};
