//! PPDC lifetime simulation (the paper's Fig. 11 experiments).
//!
//! The framework's salient feature is lifetime optimization: **TOP** builds
//! the initial traffic-optimal placement once, then **TOM** runs every hour
//! as the diurnal rate vector shifts. [`simulate`] drives that loop for a
//! chosen [`MigrationPolicy`] — mPareto, exact VNF migration, the PLAN/MCF
//! VM-migration baselines, or NoMigration — and records per-hour costs and
//! migration counts.
//!
//! [`stats`] provides the 20-run mean / 95 % confidence-interval summaries
//! every plotted data point uses; [`report`] renders aligned tables and CSV
//! for the experiment binaries.
//!
//! [`fault`] hardens the loop against infrastructure failures:
//! [`simulate_with_faults`] survives scheduled link/switch failures
//! ([`FaultSchedule`]) by re-electing a serving component, masking
//! stranded flows, and repairing displaced placements — recording per-hour
//! degradation telemetry instead of aborting the day.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod fault;
pub mod report;
pub mod simulator;
pub mod stats;

pub use fault::{
    simulate_with_faults, simulate_with_faults_observed, DegradedHourRecord, FaultConfig,
    FaultEvent, FaultKind, FaultSchedule, FaultSimResult, PhaseNanos, SimError,
};
pub use report::Table;
pub use simulator::{simulate, HourRecord, MigrationPolicy, SimConfig, SimResult};
pub use stats::{summarize, Summary};
