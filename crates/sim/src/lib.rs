//! PPDC lifetime simulation (the paper's Fig. 11 experiments).
//!
//! The framework's salient feature is lifetime optimization: **TOP** builds
//! the initial traffic-optimal placement once, then **TOM** runs every hour
//! as the diurnal rate vector shifts. [`simulate`] drives that loop for a
//! chosen [`MigrationPolicy`] — mPareto, exact VNF migration, the PLAN/MCF
//! VM-migration baselines, or NoMigration — and records per-hour costs and
//! migration counts.
//!
//! [`stats`] provides the 20-run mean / 95 % confidence-interval summaries
//! every plotted data point uses; [`report`] renders aligned tables and CSV
//! for the experiment binaries.
//!
//! [`fault`] hardens the loop against infrastructure failures:
//! [`simulate_with_faults`] survives scheduled link/switch failures
//! ([`FaultSchedule`]) by re-electing a serving component, masking
//! stranded flows, and repairing displaced placements — recording per-hour
//! degradation telemetry instead of aborting the day.
//!
//! [`checkpoint`], [`supervisor`], and [`chaos`] harden it against
//! *operator-side* failures: [`run_day`] persists crash-safe
//! `ppdc-ckpt/v1` snapshots every hour and [`resume_day`] finishes an
//! interrupted day bit-identically; a supervised degradation ladder
//! (exact → deadline-degraded → last-known-good) keeps every hour served
//! through solver starvation; and the seeded chaos harness
//! ([`run_chaos_trial`]) turns correlated pod outages, link flaps, torn
//! checkpoints, and resource pressure into asserted invariants.
//!
//! [`stream`] scales the epoch loop to millions of flows:
//! [`run_stream_day`] ingests **rate deltas** through a ToR-pair-sharded
//! flow store ([`ShardedFlowStore`]), folds them into the live attach
//! aggregates with a fixed-shape parallel tree-reduce, and re-runs the
//! solver only when accumulated drift crosses a threshold — using the
//! admissible placement bound to certify when the stale incumbent is
//! provably close enough to serve. [`resume_stream_day`] restores a
//! `ppdc-stream-ckpt/v1` snapshot and finishes the day bit-identically.

#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod chaos;
pub mod checkpoint;
pub mod fault;
pub mod report;
pub mod simulator;
pub mod stats;
pub mod stream;
pub mod supervisor;

pub use chaos::{run_chaos_trial, ChaosConfig, ChaosError, ChaosTrialConfig, ChaosTrialReport};
pub use checkpoint::{Checkpoint, CheckpointStore, CkptError, CkptSlot, CKPT_SCHEMA};
pub use fault::{
    resume_day, run_day, simulate_with_faults, simulate_with_faults_observed, DayRun,
    DegradedHourRecord, EngineConfig, FaultConfig, FaultEvent, FaultKind, FaultSchedule,
    FaultSimResult, HourProvenance, PhaseNanos, ScheduleError, SimError,
};
pub use report::Table;
pub use simulator::{simulate, HourRecord, MigrationPolicy, SimConfig, SimResult};
pub use stats::{summarize, Summary};
pub use stream::{
    resume_stream_day, run_stream_day, stream_fingerprint, DriftTracker, EpochAction, EpochRecord,
    IngestReport, RateDelta, ShardedFlowStore, StreamCheckpoint, StreamConfig, StreamError,
    StreamResult, StreamRun, STREAM_CKPT_SCHEMA,
};
pub use supervisor::{SolverStarvation, SupervisorConfig};
