//! **VNF replication** — the paper's future-work item 3, implemented.
//!
//! Instead of migrating a VNF, the operator can *replicate* it: several
//! instances of `f_j` run on different switches and every flow routes
//! through whichever replica chain is cheapest **for that flow** (policy
//! order is still enforced — the flow visits one instance of each VNF, in
//! chain order). Replication trades extra instances for traffic, where
//! migration trades movement bytes for traffic; the experiment harness
//! compares the two under dynamic load.
//!
//! * [`ReplicatedPlacement`] — one non-empty replica set per VNF.
//! * [`flow_cost_replicated`] — exact per-flow optimal routing through the
//!   replica sets (a tiny chain DP, `O(n·r²)` per flow).
//! * [`greedy_replication`] — submodular-style greedy: repeatedly add the
//!   single replica with the largest total-traffic reduction.

use crate::PlacementError;
use ppdc_model::{ModelError, Placement, Workload};
use ppdc_topology::{Cost, DistanceMatrix, Graph, NodeId, NodeKind, INFINITY};

/// A placement where every VNF may have several replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedPlacement {
    replicas: Vec<Vec<NodeId>>,
}

impl ReplicatedPlacement {
    /// Starts from a plain placement: one replica per VNF.
    pub fn from_placement(p: &Placement) -> Self {
        ReplicatedPlacement {
            replicas: p.switches().iter().map(|&s| vec![s]).collect(),
        }
    }

    /// Number of VNFs in the chain.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the chain is empty (never for constructed values).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica switches of VNF `j`.
    pub fn replicas(&self, j: usize) -> &[NodeId] {
        &self.replicas[j]
    }

    /// Total number of VNF instances across the chain.
    pub fn num_instances(&self) -> usize {
        self.replicas.iter().map(Vec::len).sum()
    }

    /// Adds a replica of VNF `j` on `switch`.
    ///
    /// # Errors
    ///
    /// The switch must be a switch of `g` and must not already host *any*
    /// instance of the chain — the model's one-VNF-per-switch assumption
    /// (paper footnote 3) applies to replicas too. (Without it, greedy
    /// replication would co-locate consecutive VNFs for zero-hop chain
    /// segments, which the per-switch NFV server cannot provide.)
    pub fn add_replica(&mut self, g: &Graph, j: usize, switch: NodeId) -> Result<(), ModelError> {
        if switch.index() >= g.num_nodes() || g.kind(switch) != NodeKind::Switch {
            return Err(ModelError::NotASwitch(switch));
        }
        if self.replicas.iter().any(|set| set.contains(&switch)) {
            return Err(ModelError::DuplicateSwitch(switch));
        }
        self.replicas[j].push(switch);
        Ok(())
    }

    /// True when `switch` hosts an instance of any VNF.
    pub fn occupies(&self, switch: NodeId) -> bool {
        self.replicas.iter().any(|set| set.contains(&switch))
    }
}

/// The cheapest policy-preserving route of one flow through the replica
/// sets: `λ · min over replica choices of (attach + chain)`.
pub fn flow_cost_replicated(
    dm: &DistanceMatrix,
    src: NodeId,
    dst: NodeId,
    rate: u64,
    rp: &ReplicatedPlacement,
) -> Cost {
    // Chain DP over replica choices.
    let mut cur: Vec<(NodeId, Cost)> = rp
        .replicas(0)
        .iter()
        .map(|&a| (a, dm.cost(src, a)))
        .collect();
    for j in 1..rp.len() {
        let next: Vec<(NodeId, Cost)> = rp
            .replicas(j)
            .iter()
            .map(|&a| {
                let best = cur
                    .iter()
                    .map(|&(b, c)| c + dm.cost(b, a))
                    .min()
                    .unwrap_or(INFINITY);
                (a, best)
            })
            .collect();
        cur = next;
    }
    let best = cur
        .iter()
        .map(|&(a, c)| c + dm.cost(a, dst))
        .min()
        .unwrap_or(INFINITY);
    rate * best
}

/// Total communication cost with per-flow optimal replica routing.
pub fn comm_cost_replicated(dm: &DistanceMatrix, w: &Workload, rp: &ReplicatedPlacement) -> Cost {
    w.iter()
        .map(|(_, src, dst, rate)| flow_cost_replicated(dm, src, dst, rate, rp))
        .sum()
}

/// Greedy replication: starting from `base`, repeatedly add the single
/// `(VNF, switch)` replica with the largest reduction in total traffic,
/// until `extra_replicas` have been added or no replica helps.
///
/// Returns the replicated placement and the cost after each addition
/// (index 0 = the unreplicated cost), so callers can plot marginal gains.
///
/// # Errors
///
/// Fails on an empty workload.
pub fn greedy_replication(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    base: &Placement,
    extra_replicas: usize,
) -> Result<(ReplicatedPlacement, Vec<Cost>), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let mut rp = ReplicatedPlacement::from_placement(base);
    let mut current = comm_cost_replicated(dm, w, &rp);
    let mut trace = vec![current];
    let switches: Vec<NodeId> = g.switches().collect();
    for _ in 0..extra_replicas {
        let mut best: Option<(Cost, usize, NodeId, ReplicatedPlacement)> = None;
        for j in 0..rp.len() {
            for &x in &switches {
                if rp.occupies(x) {
                    continue;
                }
                let mut cand = rp.clone();
                if cand.add_replica(g, j, x).is_err() {
                    // `occupies` pre-filters; any residual structural
                    // rejection just means x is not a viable replica site.
                    continue;
                }
                let cost = comm_cost_replicated(dm, w, &cand);
                if cost < current
                    && best
                        .as_ref()
                        .is_none_or(|&(c, bj, bx, _)| cost < c || (cost == c && (j, x) < (bj, bx)))
                {
                    best = Some((cost, j, x, cand));
                }
            }
        }
        match best {
            Some((cost, _, _, cand)) => {
                rp = cand;
                current = cost;
                trace.push(cost);
            }
            None => break, // no replica reduces traffic further
        }
    }
    Ok((rp, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_model::{comm_cost, Sfc};
    use ppdc_topology::builders::{fat_tree, linear};

    fn two_cluster_workload() -> (Graph, DistanceMatrix, Workload, Placement) {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h1, 100);
        w.add_pair(h2, h2, 100);
        let sfc = Sfc::of_len(2).unwrap();
        let s: Vec<NodeId> = g.switches().collect();
        let p = Placement::new(&g, &sfc, vec![s[0], s[1]]).unwrap();
        (g, dm, w, p)
    }

    #[test]
    fn single_replica_equals_plain_cost() {
        let (_, dm, w, p) = two_cluster_workload();
        let rp = ReplicatedPlacement::from_placement(&p);
        assert_eq!(comm_cost_replicated(&dm, &w, &rp), comm_cost(&dm, &w, &p));
        assert_eq!(rp.num_instances(), 2);
    }

    #[test]
    fn replication_helps_symmetric_demand() {
        // Both ends of the line have heavy local pairs; replicating the
        // chain toward the far end removes the long detour for (v2, v2').
        // Greedy is myopic: its first replica lands mid-line (f1@s3,
        // 1400 → 1200), the second gives f2@s4 (→ 1000), and only the
        // third (f1@s5) reaches the fully local routing at 100·4 per pair.
        let (g, dm, w, p) = two_cluster_workload();
        let (rp, trace) = greedy_replication(&g, &dm, &w, &p, 3).unwrap();
        assert_eq!(trace, vec![1400, 1200, 1000, 800]);
        assert_eq!(rp.num_instances(), 5);
    }

    #[test]
    fn flow_routes_through_nearest_replica() {
        let (g, dm, w, p) = two_cluster_workload();
        let mut rp = ReplicatedPlacement::from_placement(&p);
        let s: Vec<NodeId> = g.switches().collect();
        rp.add_replica(&g, 0, s[4]).unwrap();
        rp.add_replica(&g, 1, s[3]).unwrap();
        // Flow 2 (on h2) now uses the s5/s4 replicas: 1+1+2 = 4 hops.
        let (_, src, dst, rate) = w.iter().nth(1).unwrap();
        assert_eq!(flow_cost_replicated(&dm, src, dst, rate, &rp), 400);
        // Flow 1 keeps its original short route.
        let (_, src, dst, rate) = w.iter().next().unwrap();
        assert_eq!(flow_cost_replicated(&dm, src, dst, rate, &rp), 400);
    }

    #[test]
    fn add_replica_validates() {
        let (g, _, _, p) = two_cluster_workload();
        let mut rp = ReplicatedPlacement::from_placement(&p);
        let host = g.hosts().next().unwrap();
        assert!(matches!(
            rp.add_replica(&g, 0, host),
            Err(ModelError::NotASwitch(_))
        ));
        let existing = p.switch(0);
        assert!(matches!(
            rp.add_replica(&g, 0, existing),
            Err(ModelError::DuplicateSwitch(_))
        ));
    }

    #[test]
    fn greedy_stops_when_no_replica_helps() {
        // A single tiny flow: its route is already optimal, replicas only
        // ever tie (greedy requires strict improvement).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[0], 10);
        let sfc = Sfc::of_len(2).unwrap();
        let (p, _) = crate::dp_placement(&g, &dm, &w, &sfc).unwrap();
        let (rp, trace) = greedy_replication(&g, &dm, &w, &p, 5).unwrap();
        assert_eq!(rp.num_instances(), 2, "no replica strictly helps");
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn rejects_empty_workload() {
        let (g, dm, _, p) = two_cluster_workload();
        assert!(matches!(
            greedy_replication(&g, &dm, &Workload::new(), &p, 3),
            Err(PlacementError::NoFlows)
        ));
    }
}
