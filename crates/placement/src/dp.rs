//! **DP** — Algorithm 3: VNF placement for the multi-flow TOP.
//!
//! The algorithm sweeps all ordered (ingress, egress) switch pairs. For
//! each pair it charges the aggregate attachment cost
//! `A_in[ingress] + A_out[egress]` and fills the interior of the chain by
//! solving an `(n−2)`-stroll between the two switches with Algorithm 2.
//!
//! Because the stroll DP's tables depend only on the *target*, all
//! ingresses for one egress share a single table; egress switches are
//! processed in parallel with rayon.
//!
//! # Branch-and-bound sweep
//!
//! The sweep is best-first rather than exhaustive. Every ordered pair
//! `(i, j)` has an admissible lower bound
//!
//! `lb(i, j) = A_in[i] + Σλ · max(c(i, j), (n−1)·c_min) + A_out[j]`
//!
//! computed from the aggregates and metric closure alone (`c_min` is the
//! cheapest distinct-pair closure cost): any placement with ingress `i` and
//! egress `j` walks an interior chain of `n−1` closure segments whose total
//! is at least `c(i, j)` (triangle inequality) and at least `(n−1)·c_min`
//! (each segment joins distinct switches). Egresses are sorted by their
//! best bound and share an incumbent — the cheapest exact candidate seen so
//! far — through an `AtomicU64`; an egress (or a single ingress row inside
//! one) is skipped when its bound **strictly** exceeds the incumbent.
//! Strictness is what keeps the result bit-identical to the exhaustive
//! sweep ([`dp_placement_exhaustive_with_agg`]): an optimal candidate has
//! `lb ≤ cost = optimum ≤ incumbent` at every point in time, so no
//! cost-optimal candidate is ever pruned and the deterministic
//! lexicographic tie-break sees exactly the same contenders.
//!
//! All per-egress state (stroll tables, candidate chains) lives in
//! per-worker thread-local scratch reused across egresses and epochs, so
//! the steady-state sweep allocates nothing but the final placement.

use crate::aggregates::AttachAggregates;
use crate::PlacementError;
use ppdc_model::{Placement, Sfc, Workload};
use ppdc_stroll::{dp_stroll_all_sources, DpBatchSolver};
use ppdc_topology::{
    sat_add, sat_mul, Cost, DistanceMatrix, Graph, MetricClosure, NodeId, INFINITY,
};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Closure scratch for [`dp_placement_with_agg`]: refilled in place
    /// each call, so the hourly loop never re-allocates the `m × m` cost
    /// matrix or the node-universe-sized reverse index.
    static CLOSURE_SCRATCH: RefCell<MetricClosure> = RefCell::new(MetricClosure::default());
    /// Per-worker sweep scratch: stroll tables and chain buffers reused
    /// across egresses and epochs.
    static EGRESS_SCRATCH: RefCell<EgressScratch> = RefCell::new(EgressScratch::default());
}

/// Reused buffers for one egress worker: the batch stroll solver plus the
/// candidate/best chain scratch the rows are priced through.
#[derive(Default)]
struct EgressScratch {
    solver: DpBatchSolver,
    chain: Vec<NodeId>,
    best_chain: Vec<NodeId>,
}

fn too_few(switches: usize, vnfs: usize) -> PlacementError {
    PlacementError::Model(ppdc_model::ModelError::TooFewSwitches { switches, vnfs })
}

/// Runs Algorithm 3, returning the placement and its exact `C_a`.
///
/// # Errors
///
/// Fails when the workload has no flows, the SFC is longer than the number
/// of switches, or the graph is disconnected.
pub fn dp_placement(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let agg = AttachAggregates::build(g, dm, w);
    dp_placement_with_agg(g, dm, w, sfc, &agg)
}

/// [`dp_placement`] against caller-supplied aggregates.
///
/// The epoch loop of the simulator keeps one [`AttachAggregates`] alive all
/// day and folds each hour's rate deltas into it
/// ([`AttachAggregates::apply_rate_deltas`]); this entry point lets it run
/// Algorithm 3 without rebuilding the arrays. `agg` must describe `w` on
/// `g`/`dm`.
///
/// Candidate switches are taken from `agg` itself
/// ([`AttachAggregates::switches`]), so aggregates built with
/// [`AttachAggregates::build_restricted`] confine the placement to their
/// candidate set — this is how the fault-tolerant loop keeps VNFs inside the
/// serving component of a partitioned fabric. For full aggregates the
/// candidate set equals `g.switches()` and behavior is unchanged.
///
/// The metric closure is rebuilt into thread-local scratch each call;
/// callers that hold `dm` and the switch set fixed across calls should pass
/// a [`ppdc_topology::CachedClosure`]'s contents to
/// [`dp_placement_with_closure`] instead and skip even the refill.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_with_agg(
    _g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    if sfc.len() < 3 {
        // The small-n paths never touch the closure; skip the refill.
        return dp_placement_inner(dm, w, sfc, agg, None);
    }
    CLOSURE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut mc) => {
            mc.rebuild_over(dm, agg.switches());
            dp_placement_inner(dm, w, sfc, agg, Some(&mc))
        }
        // Re-entrant call on this thread (no such caller today): fall back
        // to a fresh closure rather than risking a borrow panic.
        Err(_) => dp_placement_inner(dm, w, sfc, agg, None),
    })
}

/// [`dp_placement_with_agg`] against a caller-cached metric closure, which
/// must cover exactly `agg`'s candidate switches on `dm` (checked in debug
/// builds). The simulator's hourly loop holds one
/// [`ppdc_topology::CachedClosure`] per day segment — the switch set and
/// distance matrix only change on fault events — and runs every solve
/// through it.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_with_closure(
    _g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
    closure: &MetricClosure,
) -> Result<(Placement, Cost), PlacementError> {
    dp_placement_inner(dm, w, sfc, agg, Some(closure))
}

fn dp_placement_inner(
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
    closure: Option<&MetricClosure>,
) -> Result<(Placement, Cost), PlacementError> {
    let _span = ppdc_obs::global().span(ppdc_obs::names::SOLVER_DP);
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let n = sfc.len();
    let switches = agg.switches();
    if switches.len() < n {
        return Err(too_few(switches.len(), n));
    }
    let result = match n {
        1 => {
            // The length check above guarantees at least one switch.
            let Some(best) = switches
                .iter()
                .map(|&x| (agg.a_in(x) + agg.a_out(x), x))
                .min()
            else {
                return Err(too_few(0, n));
            };
            Ok((Placement::new_unchecked(vec![best.1]), best.0))
        }
        2 => {
            let rate = agg.total_rate();
            let mut best: Option<(Cost, NodeId, NodeId)> = None;
            for &i in switches {
                for &j in switches {
                    if i == j {
                        continue;
                    }
                    let cost = agg.a_in(i) + rate * dm.cost(i, j) + agg.a_out(j);
                    if best.is_none_or(|(c, ..)| cost < c) {
                        best = Some((cost, i, j));
                    }
                }
            }
            // The length check above guarantees at least two switches.
            let Some((cost, i, j)) = best else {
                return Err(too_few(switches.len(), n));
            };
            Ok((Placement::new_unchecked(vec![i, j]), cost))
        }
        _ => match closure {
            Some(c) => {
                debug_assert_eq!(
                    c.nodes(),
                    switches,
                    "metric closure does not cover the aggregate candidate set"
                );
                bb_sweep(dm, agg, c, n)
            }
            None => bb_sweep(dm, agg, &MetricClosure::over(dm, switches), n),
        },
    };
    // `strict-invariants` contract: Algorithm 3 must return an injective
    // placement (one VNF per switch, footnote 3 of the paper) whose
    // reported cost matches an independent aggregate re-evaluation.
    #[cfg(feature = "strict-invariants")]
    if let Ok((p, c)) = &result {
        assert!(
            p.is_injective(),
            "dp_placement returned a non-injective placement: {:?}",
            p.switches()
        );
        assert_eq!(
            *c,
            agg.comm_cost(dm, p),
            "dp_placement's reported cost disagrees with re-evaluation"
        );
    }
    result
}

/// Shared read-only state of one branch-and-bound sweep, plus the
/// incumbent the workers race against.
struct SweepCtx<'a> {
    dm: &'a DistanceMatrix,
    agg: &'a AttachAggregates,
    closure: &'a MetricClosure,
    n: usize,
    rate: u64,
    /// `(n−1) · c_min`: every chain has `n−1` segments between distinct
    /// switches, each at least the cheapest closure edge.
    seg_lb: Cost,
    /// `A_in` / `A_out` re-indexed by closure index.
    a_in: Vec<Cost>,
    a_out: Vec<Cost>,
    /// Cheapest exact candidate cost seen so far (`u64::MAX` until the
    /// first candidate; every real bound saturates at [`INFINITY`], which
    /// is far below it, so nothing is pruned before a candidate exists).
    incumbent: AtomicU64,
}

impl SweepCtx<'_> {
    /// The admissible bound `lb(i, j)` of the module docs.
    fn pair_bound(&self, s_ix: usize, t_ix: usize) -> Cost {
        let chain_lb = self.closure.cost_ix(s_ix, t_ix).max(self.seg_lb);
        sat_add(
            sat_add(self.a_in[s_ix], sat_mul(self.rate, chain_lb)),
            self.a_out[t_ix],
        )
    }

    /// Best placement whose egress is closure node `t_ix`, skipping every
    /// ingress row whose bound strictly exceeds the incumbent. May return
    /// a non-minimal candidate for an egress that cannot win anyway (its
    /// pruned rows all cost strictly more than the optimum), never for one
    /// that can — see the module docs.
    fn best_for_egress(
        &self,
        t_ix: usize,
        scratch: &mut EgressScratch,
    ) -> Option<(Cost, Placement)> {
        let m = self.closure.len();
        scratch.solver.reset(self.closure, t_ix);
        let egress = self.closure.node(t_ix);
        let mut best_cost: Option<Cost> = None;
        for s_ix in 0..m {
            if s_ix == t_ix {
                continue;
            }
            if self.pair_bound(s_ix, t_ix) > self.incumbent.load(Ordering::Relaxed) {
                continue;
            }
            let Ok(sol) = scratch.solver.solve(self.closure, s_ix, self.n - 2) else {
                continue;
            };
            scratch.chain.clear();
            scratch.chain.push(self.closure.node(s_ix));
            scratch.chain.extend_from_slice(sol.first_n(self.n - 2));
            scratch.chain.push(egress);
            let cost = self.agg.comm_cost_switches(self.dm, &scratch.chain);
            self.incumbent.fetch_min(cost, Ordering::Relaxed);
            let better = match best_cost {
                None => true,
                Some(c) => {
                    cost < c
                        || (cost == c && scratch.chain.as_slice() < scratch.best_chain.as_slice())
                }
            };
            if better {
                best_cost = Some(cost);
                std::mem::swap(&mut scratch.chain, &mut scratch.best_chain);
            }
        }
        best_cost.map(|c| (c, Placement::new_unchecked(scratch.best_chain.clone())))
    }
}

/// The `n ≥ 3` best-first sweep over all egresses.
fn bb_sweep(
    dm: &DistanceMatrix,
    agg: &AttachAggregates,
    closure: &MetricClosure,
    n: usize,
) -> Result<(Placement, Cost), PlacementError> {
    let m = closure.len();
    let mut c_min = INFINITY;
    for i in 0..m {
        for j in (i + 1)..m {
            c_min = c_min.min(closure.cost_ix(i, j));
        }
    }
    let interior = u64::try_from(n - 1).unwrap_or(u64::MAX);
    let ctx = SweepCtx {
        dm,
        agg,
        closure,
        n,
        rate: agg.total_rate(),
        seg_lb: sat_mul(interior, c_min),
        a_in: (0..m).map(|i| agg.a_in(closure.node(i))).collect(),
        a_out: (0..m).map(|i| agg.a_out(closure.node(i))).collect(),
        incumbent: AtomicU64::new(u64::MAX),
    };
    // Best-bound-first egress order: the cheapest egress is solved first,
    // so the incumbent is near-optimal almost immediately and the tail of
    // the (sorted) order prunes wholesale.
    let mut order: Vec<(Cost, usize)> = (0..m)
        .map(|t_ix| {
            let bound = (0..m)
                .filter(|&s_ix| s_ix != t_ix)
                .map(|s_ix| ctx.pair_bound(s_ix, t_ix))
                .min()
                .unwrap_or(u64::MAX);
            (bound, t_ix)
        })
        .collect();
    order.sort_unstable();
    let results: Vec<Option<(Cost, Placement)>> = order
        .into_par_iter()
        .map(|(bound, t_ix)| {
            if bound > ctx.incumbent.load(Ordering::Relaxed) {
                ppdc_obs::global().add(ppdc_obs::names::SOLVER_DP_EGRESS_PRUNED, 1);
                return None;
            }
            EGRESS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
                Ok(mut scratch) => ctx.best_for_egress(t_ix, &mut scratch),
                // Re-entrant worker on this thread (no such path today):
                // fresh scratch instead of a borrow panic.
                Err(_) => ctx.best_for_egress(t_ix, &mut EgressScratch::default()),
            })
        })
        .collect();
    results
        .into_iter()
        .flatten()
        .min_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.switches().cmp(b.1.switches()))
        })
        .map(|(c, p)| (p, c))
        .ok_or(PlacementError::Stroll(
            ppdc_stroll::StrollError::Unreachable,
        ))
}

/// The pre-pruning exhaustive (ingress, egress) sweep, kept verbatim as the
/// bit-identity oracle for the branch-and-bound solver: `tests/proptests.rs`
/// asserts both return the same cost **and** switch sequence on random
/// workloads, and the benches use it as the baseline.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_exhaustive_with_agg(
    _g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    if sfc.len() < 3 {
        // The small-n paths have no pruning to ablate.
        return dp_placement_inner(dm, w, sfc, agg, None);
    }
    let _span = ppdc_obs::global().span(ppdc_obs::names::SOLVER_DP);
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let n = sfc.len();
    let switches = agg.switches();
    if switches.len() < n {
        return Err(too_few(switches.len(), n));
    }
    let closure = MetricClosure::over(dm, switches);
    let results: Vec<(Cost, Placement)> = (0..switches.len())
        .into_par_iter()
        .filter_map(|t_ix| best_for_egress_exhaustive(dm, agg, &closure, t_ix, n))
        .collect();
    results
        .into_iter()
        .min_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.switches().cmp(b.1.switches()))
        })
        .map(|(c, p)| (p, c))
        .ok_or(PlacementError::Stroll(
            ppdc_stroll::StrollError::Unreachable,
        ))
}

/// Best placement whose egress is closure node `t_ix`, every ingress row
/// solved unconditionally (the oracle counterpart of
/// [`SweepCtx::best_for_egress`]).
fn best_for_egress_exhaustive(
    dm: &DistanceMatrix,
    agg: &AttachAggregates,
    closure: &MetricClosure,
    t_ix: usize,
    n: usize,
) -> Option<(Cost, Placement)> {
    let sources: Vec<usize> = (0..closure.len()).filter(|&i| i != t_ix).collect();
    let solutions = dp_stroll_all_sources(closure, &sources, t_ix, n - 2);
    let egress = closure.node(t_ix);
    let mut best: Option<(Cost, Placement)> = None;
    for (&s_ix, sol) in sources.iter().zip(&solutions) {
        let Ok(sol) = sol else { continue };
        let ingress = closure.node(s_ix);
        let mut chain = Vec::with_capacity(n);
        chain.push(ingress);
        chain.extend_from_slice(sol.first_n(n - 2));
        chain.push(egress);
        let p = Placement::new_unchecked(chain);
        let cost = agg.comm_cost(dm, &p);
        if best
            .as_ref()
            .is_none_or(|(c, bp)| cost < *c || (cost == *c && p.switches() < bp.switches()))
        {
            best = Some((cost, p));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_model::comm_cost;
    use ppdc_topology::builders::{fat_tree, linear};

    #[test]
    fn example1_initial_placement() {
        // Paper Fig. 3(a): λ = ⟨100, 1⟩ on the 5-switch linear PPDC.
        // The optimal 2-VNF placement costs 410 (f1@s1, f2@s2 is one
        // optimum; the mirrored f1@s5, f2@s4 is the other).
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h1, 100);
        w.add_pair(h2, h2, 1);
        let sfc = Sfc::of_len(2).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost, 410);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        // After the rate swap the optimum mirrors to 410 as well.
        w.set_rates(&[1, 100]).unwrap();
        let (p2, cost2) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost2, 410);
        assert_ne!(p.switches(), p2.switches());
    }

    #[test]
    fn single_vnf_is_weighted_median() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let sfc = Sfc::of_len(1).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        // Any switch on the h1–h2 line gives cost 6.
        assert_eq!(cost, 6);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn three_vnfs_on_linear() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 10);
        let sfc = Sfc::of_len(3).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        // Three consecutive switches on the line: still the plain 6-hop
        // route, cost 60.
        assert_eq!(cost, 60);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn reported_cost_is_exact_eq1_on_fat_tree() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], 9);
        w.add_pair(hosts[2], hosts[13], 4);
        w.add_pair(hosts[7], hosts[7], 70);
        for n in 1..=5 {
            let sfc = Sfc::of_len(n).unwrap();
            let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
            assert_eq!(cost, comm_cost(&dm, &w, &p), "n={n}");
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn pruned_sweep_matches_exhaustive_oracle() {
        // The branch-and-bound must agree with the exhaustive sweep bit
        // for bit — cost AND switch sequence — across chain lengths and
        // fabrics (proptests cover random workloads on top of this).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..8 {
            w.add_pair(hosts[i], hosts[15 - i], (i as u64).pow(2) + 3);
        }
        for n in 3..=6 {
            let sfc = Sfc::of_len(n).unwrap();
            let agg = AttachAggregates::build(&g, &dm, &w);
            let (p_bb, c_bb) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            let (p_ex, c_ex) = dp_placement_exhaustive_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            assert_eq!(c_bb, c_ex, "n={n}");
            assert_eq!(p_bb.switches(), p_ex.switches(), "n={n}");
        }
    }

    #[test]
    fn cached_closure_entry_point_matches() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[1], hosts[9], 17);
        w.add_pair(hosts[4], hosts[2], 3);
        let sfc = Sfc::of_len(4).unwrap();
        let agg = AttachAggregates::build(&g, &dm, &w);
        let mut cc = ppdc_topology::CachedClosure::new();
        let (p1, c1) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
        for _ in 0..2 {
            let closure = cc.get_or_rebuild(&dm, agg.switches());
            let (p2, c2) = dp_placement_with_closure(&g, &dm, &w, &sfc, &agg, closure).unwrap();
            assert_eq!(c1, c2);
            assert_eq!(p1.switches(), p2.switches());
        }
    }

    #[test]
    fn rejects_empty_workload() {
        let (g, ..) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let sfc = Sfc::of_len(2).unwrap();
        assert!(matches!(
            dp_placement(&g, &dm, &Workload::new(), &sfc),
            Err(PlacementError::NoFlows)
        ));
    }

    #[test]
    fn rejects_too_long_sfc() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let sfc = Sfc::of_len(4).unwrap();
        assert!(matches!(
            dp_placement(&g, &dm, &w, &sfc),
            Err(PlacementError::Model(_))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..6 {
            w.add_pair(hosts[i], hosts[15 - i], (i as u64 + 1) * 13);
        }
        let sfc = Sfc::of_len(4).unwrap();
        let (p1, c1) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        let (p2, c2) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(p1.switches(), p2.switches());
    }
}
