//! **DP** — Algorithm 3: VNF placement for the multi-flow TOP.
//!
//! The algorithm sweeps all ordered (ingress, egress) switch pairs. For
//! each pair it charges the aggregate attachment cost
//! `A_in[ingress] + A_out[egress]` and fills the interior of the chain by
//! solving an `(n−2)`-stroll between the two switches with Algorithm 2.
//!
//! Because the stroll DP's tables depend only on the *target*, all
//! ingresses for one egress share a single table; egress switches are
//! processed in parallel with rayon.
//!
//! # Branch-and-bound sweep
//!
//! The sweep is best-first rather than exhaustive. Every ordered pair
//! `(i, j)` has an admissible lower bound
//!
//! `lb(i, j) = A_in[i] + Σλ · max(c(i, j), (n−1)·c_min) + A_out[j]`
//!
//! computed from the aggregates and metric closure alone (`c_min` is the
//! cheapest distinct-pair closure cost): any placement with ingress `i` and
//! egress `j` walks an interior chain of `n−1` closure segments whose total
//! is at least `c(i, j)` (triangle inequality) and at least `(n−1)·c_min`
//! (each segment joins distinct switches). Egresses are sorted by their
//! best bound and share an incumbent — the cheapest exact candidate seen so
//! far — through an `AtomicU64`; an egress (or a single ingress row inside
//! one) is skipped when its bound **strictly** exceeds the incumbent.
//! Strictness is what keeps the result bit-identical to the exhaustive
//! sweep ([`dp_placement_exhaustive_with_agg`]): an optimal candidate has
//! `lb ≤ cost = optimum ≤ incumbent` at every point in time, so no
//! cost-optimal candidate is ever pruned and the deterministic
//! lexicographic tie-break sees exactly the same contenders.
//!
//! # Orbit compression
//!
//! The bound `lb(i, j)` only reads `A_in[i]`, `A_out[j]`, and `c(i, j)`,
//! so switches that agree on all three are *interchangeable* to every
//! bound decision. The sweep groups the candidate set into
//! interchangeability classes — `u ≡ v` iff `A_in`, `A_out` agree and
//! their closure rows agree off `{u, v}` — and evaluates each bound once
//! per class representative: one comparison covers `|S|·|T|` pairs. On a
//! fat-tree these classes recover the topology's automorphism orbits
//! ([`ppdc_topology::FatTreeOracle::orbits`]) refined by the workload:
//! edge switches within a pod and core switches within a core group merge
//! whenever their attached rate masses agree (aggregation switches stay
//! singletons among switch candidates — their distance to core group `a`
//! is 1 for agg `a` and 3 otherwise, so their rows differ). Compression
//! applies to **bounds only**: every surviving member is still solved
//! individually, because the stroll DP's reconstruction argmins are
//! index-dependent; since class members share one bound value, pruning by
//! the representative prunes exactly the rows the per-row test would
//! have, and the bit-identity argument above carries over unchanged (see
//! DESIGN.md §8).
//!
//! Compression only pays when there are enough candidates to share
//! bounds across: below [`ORBIT_MIN_SWITCHES`] the sweep uses singleton
//! classes (every switch its own class), which reduces exactly to the
//! per-row bound test. Any partition into valid interchangeability
//! classes yields the same sweep result — the bound values are identical
//! either way — so the cutoff is a pure time trade.
//!
//! # Warm starts
//!
//! The streaming engine re-solves the same instance epoch after epoch
//! with only a few hosts' masses moved. [`crate::warm::dp_placement_warm`]
//! wraps this sweep with a persistent bound cache and an incumbent seed;
//! the pieces it reuses ([`sweep_classes_with_hashes`], [`egress_order`],
//! [`SweepCtx::run_sweep`]) live here so warm and cold share one code
//! path and stay bit-identical by construction.
//!
//! All per-egress state (stroll tables, candidate chains) lives in
//! per-worker thread-local scratch reused across egresses and epochs, so
//! the steady-state sweep allocates nothing but the final placement.
//!
//! Every distance is consumed through [`DistanceOracle`], so the sweep
//! runs identically over a dense [`ppdc_topology::DistanceMatrix`] or the
//! zero-build [`ppdc_topology::FatTreeOracle`] — the latter is what makes
//! k = 32 (1,280 switches) solves possible without a V² matrix.

use crate::aggregates::AttachAggregates;
use crate::PlacementError;
use ppdc_model::{Placement, Sfc, Workload};
use ppdc_stroll::{dp_stroll_all_sources, DpBatchSolver};
use ppdc_topology::{
    sat_add, sat_mul, Cost, DistanceOracle, Graph, MetricClosure, NodeId, INFINITY,
};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

thread_local! {
    /// Closure scratch for [`dp_placement_with_agg`]: refilled in place
    /// each call, so the hourly loop never re-allocates the `m × m` cost
    /// matrix or the node-universe-sized reverse index.
    static CLOSURE_SCRATCH: RefCell<MetricClosure> = RefCell::new(MetricClosure::default());
    /// Per-worker sweep scratch: stroll tables and chain buffers reused
    /// across egresses and epochs.
    static EGRESS_SCRATCH: RefCell<EgressScratch> = RefCell::new(EgressScratch::default());
}

/// Reused buffers for one egress worker: the batch stroll solver plus the
/// candidate/best chain scratch the rows are priced through.
#[derive(Default)]
struct EgressScratch {
    solver: DpBatchSolver,
    chain: Vec<NodeId>,
    best_chain: Vec<NodeId>,
}

/// One egress slot of the interior memo, indexed by ingress closure
/// index: the `n−2` interior switches of the row's chain, or `None` when
/// the stroll solver reported the row unsolvable (or the index is the
/// egress itself). Empty until the sweep first visits the egress, then
/// filled densely in one pass — see [`SweepCtx::fill_slot`].
type MemoSlot = Vec<Option<Box<[NodeId]>>>;

/// Cross-epoch memo of interior stroll chains, owned by the warm path's
/// [`crate::warm::BoundCache`].
///
/// A stroll solution is a deterministic function of
/// `(closure, egress, ingress, n)` alone — the aggregates never enter the
/// DP, and even the tie-break perturbation retries derive from the
/// closure — so while the closure is unchanged a memoized interior chain
/// is byte-identical to what [`DpBatchSolver`] would recompute, and
/// pricing it under the current epoch's aggregates reproduces the cold
/// cost exactly. This is where the warm speedup actually comes from: the
/// admissible bounds cannot shrink the `{lb ≤ optimum}` survivor set, but
/// the survivors' DP fills (the dominant cost per egress) collapse to
/// `O(1)` lookups plus an `O(n)` aggregate pricing on every epoch after
/// the first.
///
/// Each egress index owns one mutex-guarded slot; the sweep hands a whole
/// slot to the single worker visiting that egress, so the locks never
/// contend — they exist to make the memo writable through the `&SweepCtx`
/// the parallel workers share.
#[derive(Debug, Default)]
pub(crate) struct InteriorMemo {
    slots: Vec<Mutex<MemoSlot>>,
}

impl InteriorMemo {
    /// Drops every memoized chain and resizes to `m` egress slots. Must
    /// run whenever the closure is rebuilt: the chains (and the closure
    /// indices keying them) are only valid for the closure they were
    /// solved under.
    pub(crate) fn reset(&mut self, m: usize) {
        self.slots.clear();
        self.slots.resize_with(m, Mutex::default);
    }

    /// The slot for egress `t_ix`, or `None` when the memo was never
    /// sized for this closure (cold sweeps pass no memo at all).
    fn slot(&self, t_ix: usize) -> Option<std::sync::MutexGuard<'_, MemoSlot>> {
        self.slots
            .get(t_ix)
            // A worker can only poison its own slot, and a poisoned map
            // still holds only completed inserts — safe to keep using.
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

pub(crate) fn too_few(switches: usize, vnfs: usize) -> PlacementError {
    PlacementError::Model(ppdc_model::ModelError::TooFewSwitches { switches, vnfs })
}

/// Runs Algorithm 3, returning the placement and its exact `C_a`.
///
/// # Errors
///
/// Fails when the workload has no flows, the SFC is longer than the number
/// of switches, or the graph is disconnected.
pub fn dp_placement<D: DistanceOracle + ?Sized>(
    g: &Graph,
    dm: &D,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let agg = AttachAggregates::build(g, dm, w);
    dp_placement_with_agg(g, dm, w, sfc, &agg)
}

/// [`dp_placement`] against caller-supplied aggregates.
///
/// The epoch loop of the simulator keeps one [`AttachAggregates`] alive all
/// day and folds each hour's rate deltas into it
/// ([`AttachAggregates::apply_rate_deltas`]); this entry point lets it run
/// Algorithm 3 without rebuilding the arrays. `agg` must describe `w` on
/// `g`/`dm`.
///
/// Candidate switches are taken from `agg` itself
/// ([`AttachAggregates::switches`]), so aggregates built with
/// [`AttachAggregates::build_restricted`] confine the placement to their
/// candidate set — this is how the fault-tolerant loop keeps VNFs inside the
/// serving component of a partitioned fabric. For full aggregates the
/// candidate set equals `g.switches()` and behavior is unchanged.
///
/// The metric closure is rebuilt into thread-local scratch each call;
/// callers that hold `dm` and the switch set fixed across calls should pass
/// a [`ppdc_topology::CachedClosure`]'s contents to
/// [`dp_placement_with_closure`] instead and skip even the refill.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_with_agg<D: DistanceOracle + ?Sized>(
    _g: &Graph,
    dm: &D,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    if sfc.len() < 3 {
        // The small-n paths never touch the closure; skip the refill.
        return dp_placement_inner(dm, w, sfc, agg, None);
    }
    CLOSURE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut mc) => {
            mc.rebuild_over(dm, agg.switches());
            dp_placement_inner(dm, w, sfc, agg, Some(&mc))
        }
        // Re-entrant call on this thread (no such caller today): fall back
        // to a fresh closure rather than risking a borrow panic.
        Err(_) => dp_placement_inner(dm, w, sfc, agg, None),
    })
}

/// [`dp_placement_with_agg`] against a caller-cached metric closure, which
/// must cover exactly `agg`'s candidate switches on `dm` (checked in debug
/// builds). The simulator's hourly loop holds one
/// [`ppdc_topology::CachedClosure`] per day segment — the switch set and
/// distance matrix only change on fault events — and runs every solve
/// through it.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_with_closure<D: DistanceOracle + ?Sized>(
    _g: &Graph,
    dm: &D,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
    closure: &MetricClosure,
) -> Result<(Placement, Cost), PlacementError> {
    dp_placement_inner(dm, w, sfc, agg, Some(closure))
}

/// The branch-and-bound admissible bound, minimised over all ordered
/// (ingress, egress) pairs and exposed standalone:
///
/// `LB = min_{i ≠ j} A_in[i] + Σλ · max(c(i, j), (n−1)·c_min) + A_out[j]`
///
/// (for `n = 1`, `min_x A_in[x] + A_out[x]`). Every admissibility argument
/// of the module docs applies pairwise, so `LB ≤ C_a*` — the optimal cost
/// of Algorithm 3 over `agg`'s candidate set — in the saturating algebra.
/// For `n ≤ 2` the bound is exact.
///
/// This is the streaming engine's *staleness certificate*: after folding
/// rate deltas into `agg`, `comm_cost(incumbent) − LB` bounds how far the
/// stale incumbent placement can be from the current optimum, without
/// running a solve. `O(m²)` oracle queries and no closure build, so it is
/// cheap even at k = 32 against the analytic fat-tree oracle.
///
/// Returns [`INFINITY`] when `agg` offers fewer than `sfc_len` candidate
/// switches (no placement exists, so every cost bound holds vacuously) or
/// when `sfc_len == 0`.
pub fn placement_cost_lower_bound<D: DistanceOracle + ?Sized>(
    dm: &D,
    agg: &AttachAggregates,
    sfc_len: usize,
) -> Cost {
    let switches = agg.switches();
    let m = switches.len();
    if sfc_len == 0 || m < sfc_len {
        return INFINITY;
    }
    if sfc_len == 1 {
        return switches
            .iter()
            .map(|&x| sat_add(agg.a_in(x), agg.a_out(x)))
            .min()
            .unwrap_or(INFINITY);
    }
    let rate = agg.total_rate();
    let mut c_min = INFINITY;
    for &i in switches {
        for &j in switches {
            if i != j {
                c_min = c_min.min(dm.cost(i, j));
            }
        }
    }
    let segments = u64::try_from(sfc_len - 1).unwrap_or(u64::MAX);
    let seg_lb = sat_mul(segments, c_min);
    let mut lb = u64::MAX; // above every saturated bound
    for &i in switches {
        for &j in switches {
            if i == j {
                continue;
            }
            let chain_lb = dm.cost(i, j).max(seg_lb);
            let bound = sat_add(sat_add(agg.a_in(i), sat_mul(rate, chain_lb)), agg.a_out(j));
            lb = lb.min(bound);
        }
    }
    lb.min(INFINITY)
}

pub(crate) fn dp_placement_inner<D: DistanceOracle + ?Sized>(
    dm: &D,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
    closure: Option<&MetricClosure>,
) -> Result<(Placement, Cost), PlacementError> {
    let _span = ppdc_obs::global().span(ppdc_obs::names::SOLVER_DP);
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let n = sfc.len();
    let switches = agg.switches();
    if switches.len() < n {
        return Err(too_few(switches.len(), n));
    }
    let result = match n {
        1 => {
            // The length check above guarantees at least one switch.
            let Some(best) = switches
                .iter()
                .map(|&x| (agg.a_in(x) + agg.a_out(x), x))
                .min()
            else {
                return Err(too_few(0, n));
            };
            Ok((Placement::new_unchecked(vec![best.1]), best.0))
        }
        2 => {
            let rate = agg.total_rate();
            let mut best: Option<(Cost, NodeId, NodeId)> = None;
            for &i in switches {
                for &j in switches {
                    if i == j {
                        continue;
                    }
                    let cost = agg.a_in(i) + rate * dm.cost(i, j) + agg.a_out(j);
                    if best.is_none_or(|(c, ..)| cost < c) {
                        best = Some((cost, i, j));
                    }
                }
            }
            // The length check above guarantees at least two switches.
            let Some((cost, i, j)) = best else {
                return Err(too_few(switches.len(), n));
            };
            Ok((Placement::new_unchecked(vec![i, j]), cost))
        }
        _ => match closure {
            Some(c) => {
                debug_assert_eq!(
                    c.nodes(),
                    switches,
                    "metric closure does not cover the aggregate candidate set"
                );
                bb_sweep(dm, agg, c, n)
            }
            None => bb_sweep(dm, agg, &MetricClosure::over(dm, switches), n),
        },
    };
    // `strict-invariants` contract: Algorithm 3 must return an injective
    // placement (one VNF per switch, footnote 3 of the paper) whose
    // reported cost matches an independent aggregate re-evaluation.
    #[cfg(feature = "strict-invariants")]
    if let Ok((p, c)) = &result {
        assert!(
            p.is_injective(),
            "dp_placement returned a non-injective placement: {:?}",
            p.switches()
        );
        assert_eq!(
            *c,
            agg.comm_cost(dm, p),
            "dp_placement's reported cost disagrees with re-evaluation"
        );
    }
    result
}

/// SplitMix64 finalizer: the commutative row-fingerprint mixer of
/// [`interchange_classes`]. Any collision is caught by the exact row
/// comparison that follows, so only determinism matters here.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Groups closure indices into interchangeability classes: `u ≡ v` iff
/// `a_in[u] = a_in[v]`, `a_out[u] = a_out[v]`, and the closure rows agree
/// off the pair (`c(u, x) = c(v, x)` for every `x ∉ {u, v}`). With a
/// symmetric closure this is an equivalence relation (DESIGN.md §8), and
/// the in-class distance `c(u, v)` is constant over distinct class pairs
/// — which is exactly what makes every sweep bound constant over `S × T`.
///
/// Candidates are bucketed by `(a_in, a_out, commutative row hash)` and
/// verified with an exact row comparison against each open class
/// representative, so hash collisions cost time, never correctness.
/// Classes come back ordered by first member, members ascending —
/// deterministic regardless of hash values. Arbitrary (asymmetric
/// workload, irregular fabric) inputs simply degrade to singletons.
pub(crate) fn interchange_classes(
    closure: &MetricClosure,
    a_in: &[Cost],
    a_out: &[Cost],
) -> Vec<Vec<usize>> {
    interchange_classes_with_hashes(closure, a_in, a_out, &closure_row_hashes(closure))
}

/// Full-row commutative fingerprints for [`interchange_classes`]:
/// interchangeable rows are equal as multisets (the off-pair entries match
/// pointwise, the pair entries are `0` and the symmetric `c(u, v)` on both
/// sides). Split out because the fingerprints depend only on the closure —
/// not the aggregates — so the warm path's [`crate::warm::BoundCache`]
/// computes them once per candidate set and reclassifies dirty epochs
/// against the cached values.
pub(crate) fn closure_row_hashes(closure: &MetricClosure) -> Vec<u64> {
    let m = closure.len();
    (0..m)
        .map(|i| (0..m).fold(0u64, |acc, x| acc.wrapping_add(mix(closure.cost_ix(i, x)))))
        .collect()
}

/// [`interchange_classes`] against caller-cached row fingerprints, which
/// must equal [`closure_row_hashes`] of `closure` (checked in debug
/// builds). The fingerprint is a bucketing accelerator only — membership
/// is decided by the exact row comparison — so correct hashes make the
/// result identical to a from-scratch classification.
pub(crate) fn interchange_classes_with_hashes(
    closure: &MetricClosure,
    a_in: &[Cost],
    a_out: &[Cost],
    hashes: &[u64],
) -> Vec<Vec<usize>> {
    let m = closure.len();
    debug_assert_eq!(hashes.len(), m, "row fingerprints do not cover the closure");
    let mut keyed: Vec<(Cost, Cost, u64, usize)> =
        (0..m).map(|i| (a_in[i], a_out[i], hashes[i], i)).collect();
    keyed.sort_unstable();
    let rows_agree = |u: usize, v: usize| {
        (0..m).all(|x| x == u || x == v || closure.cost_ix(u, x) == closure.cost_ix(v, x))
    };
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut start = 0;
    while start < m {
        let bucket = (keyed[start].0, keyed[start].1, keyed[start].2);
        let mut end = start;
        while end < m && (keyed[end].0, keyed[end].1, keyed[end].2) == bucket {
            end += 1;
        }
        // Classes opened for this bucket; the transitivity of ≡ makes a
        // representative comparison sufficient.
        let first_new = classes.len();
        for &(.., i) in &keyed[start..end] {
            match (first_new..classes.len()).find(|&ci| rows_agree(classes[ci][0], i)) {
                Some(ci) => classes[ci].push(i),
                None => classes.push(vec![i]),
            }
        }
        start = end;
    }
    // Bucket order depends on aggregate values; re-anchor to index order.
    classes.sort_unstable_by_key(|c| c[0]);
    classes
}

/// Below this candidate count the sweep skips [`interchange_classes`]
/// bucketing and every switch is its own class. The O(m²) fingerprint
/// fold plus bucket verification costs more than the bound sharing
/// recovers on small fabrics (k = 4 has 20 switch candidates, k = 8 has
/// 80 — both finish in tens of microseconds either way), while k = 16
/// (320) and k = 32 (1,280) sit far above the line and keep full orbit
/// compression. Singleton classes are a valid interchangeability
/// partition and every pruning decision compares the same bound values,
/// so the cutoff cannot change any result (see the module docs).
pub(crate) const ORBIT_MIN_SWITCHES: usize = 128;

fn singleton_classes(m: usize) -> Vec<Vec<usize>> {
    (0..m).map(|i| vec![i]).collect()
}

/// The sweep's class partition behind the [`ORBIT_MIN_SWITCHES`] cutoff:
/// singletons below it, [`interchange_classes`] at or above.
pub(crate) fn sweep_classes(
    closure: &MetricClosure,
    a_in: &[Cost],
    a_out: &[Cost],
) -> Vec<Vec<usize>> {
    if closure.len() < ORBIT_MIN_SWITCHES {
        singleton_classes(closure.len())
    } else {
        interchange_classes(closure, a_in, a_out)
    }
}

/// [`sweep_classes`] against caller-cached row fingerprints; `hashes` is
/// never read below the cutoff (the warm cache leaves it empty there).
pub(crate) fn sweep_classes_with_hashes(
    closure: &MetricClosure,
    a_in: &[Cost],
    a_out: &[Cost],
    hashes: &[u64],
) -> Vec<Vec<usize>> {
    if closure.len() < ORBIT_MIN_SWITCHES {
        singleton_classes(closure.len())
    } else {
        interchange_classes_with_hashes(closure, a_in, a_out, hashes)
    }
}

/// The cheapest distinct-pair closure cost — the `c_min` of the module
/// docs' bound.
pub(crate) fn closure_c_min(closure: &MetricClosure) -> Cost {
    let m = closure.len();
    let mut c_min = INFINITY;
    for i in 0..m {
        for j in (i + 1)..m {
            c_min = c_min.min(closure.cost_ix(i, j));
        }
    }
    c_min
}

/// `class_size[i]`: how many members index `i`'s class has — the "was
/// this prune shared with siblings" test for the orbit counter.
pub(crate) fn class_sizes(classes: &[Vec<usize>], m: usize) -> Vec<u32> {
    let mut class_size = vec![0u32; m];
    for class in classes {
        let size = u32::try_from(class.len()).unwrap_or(u32::MAX);
        for &i in class {
            class_size[i] = size;
        }
    }
    class_size
}

/// The admissible bound `lb(i, j)` of the module docs over raw slices, so
/// the sweep context and the warm bound cache share one formula.
fn pair_bound_raw(
    closure: &MetricClosure,
    a_in: &[Cost],
    a_out: &[Cost],
    rate: u64,
    seg_lb: Cost,
    s_ix: usize,
    t_ix: usize,
) -> Cost {
    let chain_lb = closure.cost_ix(s_ix, t_ix).max(seg_lb);
    sat_add(sat_add(a_in[s_ix], sat_mul(rate, chain_lb)), a_out[t_ix])
}

/// Best-bound-first egress order: `(min_{s≠t} lb(s, t), t_ix)` sorted
/// ascending, so the cheapest egress is solved first, the incumbent is
/// near-optimal almost immediately, and the tail of the order prunes
/// wholesale. The per-egress bound is constant over an egress class and
/// constant over each ingress class, so it is evaluated once per class
/// *pair* — O(classes²) instead of O(m²) — and shared by every member;
/// the resulting vector is value-identical to the per-pair scan, so the
/// sort order (and with it the whole sweep) is unchanged.
pub(crate) fn egress_order(
    closure: &MetricClosure,
    a_in: &[Cost],
    a_out: &[Cost],
    classes: &[Vec<usize>],
    rate: u64,
    seg_lb: Cost,
) -> Vec<(Cost, usize)> {
    let mut order: Vec<(Cost, usize)> = Vec::with_capacity(closure.len());
    for (ti, t_class) in classes.iter().enumerate() {
        let t_rep = t_class[0];
        let mut bound = u64::MAX;
        for (si, s_class) in classes.iter().enumerate() {
            let s_rep = if si != ti {
                s_class[0]
            } else if s_class.len() > 1 {
                // In-class pair: the constant class diameter as c(s, t).
                s_class[1]
            } else {
                continue; // the lone member is the egress itself
            };
            bound = bound.min(pair_bound_raw(
                closure, a_in, a_out, rate, seg_lb, s_rep, t_rep,
            ));
        }
        for &t_ix in t_class {
            order.push((bound, t_ix));
        }
    }
    order.sort_unstable();
    order
}

/// Shared read-only state of one branch-and-bound sweep, plus the
/// incumbent the workers race against.
pub(crate) struct SweepCtx<'a, D: DistanceOracle + ?Sized> {
    pub(crate) dm: &'a D,
    pub(crate) agg: &'a AttachAggregates,
    pub(crate) closure: &'a MetricClosure,
    pub(crate) n: usize,
    pub(crate) rate: u64,
    /// `(n−1) · c_min`: every chain has `n−1` segments between distinct
    /// switches, each at least the cheapest closure edge.
    pub(crate) seg_lb: Cost,
    /// `A_in` / `A_out` re-indexed by closure index.
    pub(crate) a_in: &'a [Cost],
    pub(crate) a_out: &'a [Cost],
    /// Interchangeability classes of the closure indices
    /// ([`sweep_classes`]): every bound is evaluated once per class.
    pub(crate) classes: &'a [Vec<usize>],
    /// [`class_sizes`] of `classes`.
    pub(crate) class_size: &'a [u32],
    /// Cross-epoch interior-chain memo; `None` on cold sweeps. See
    /// [`InteriorMemo`] for why consulting it preserves bit-identity.
    pub(crate) memo: Option<&'a InteriorMemo>,
    /// Cheapest exact candidate cost seen so far (`u64::MAX` until the
    /// first candidate — or the warm path's seeded incumbent cost; every
    /// real bound saturates at [`INFINITY`], which is far below `MAX`, so
    /// a cold sweep prunes nothing before a candidate exists).
    pub(crate) incumbent: AtomicU64,
}

impl<D: DistanceOracle + ?Sized> SweepCtx<'_, D> {
    /// The admissible bound `lb(i, j)` of the module docs.
    fn pair_bound(&self, s_ix: usize, t_ix: usize) -> Cost {
        pair_bound_raw(
            self.closure,
            self.a_in,
            self.a_out,
            self.rate,
            self.seg_lb,
            s_ix,
            t_ix,
        )
    }

    /// Fills `scratch.chain` with the full candidate chain for one
    /// `(s_ix, egress)` row — ingress, `n−2` interior switches, egress —
    /// consulting the interior memo when one is attached. Returns `false`
    /// when the stroll solver cannot produce `n−2` distinct interior
    /// switches for the pair; the memo remembers failures too, so a warm
    /// sweep never re-runs a known-dead row.
    fn fill_chain(
        &self,
        s_ix: usize,
        t_ix: usize,
        egress: NodeId,
        scratch: &mut EgressScratch,
        memo_slot: Option<&mut MemoSlot>,
    ) -> bool {
        scratch.chain.clear();
        scratch.chain.push(self.closure.node(s_ix));
        if let Some(slot) = memo_slot {
            if slot.is_empty() {
                self.fill_slot(t_ix, scratch, slot);
            }
            match &slot[s_ix] {
                // Memo hit: the chain is closure-determined, so the
                // cached interior is exactly what the DP would rebuild.
                Some(interior) => scratch.chain.extend_from_slice(interior),
                None => return false,
            }
        } else {
            let Ok(sol) = scratch.solver.solve(self.closure, s_ix, self.n - 2) else {
                return false;
            };
            scratch.chain.extend_from_slice(sol.first_n(self.n - 2));
        }
        scratch.chain.push(egress);
        true
    }

    /// Densely solves every ingress row of egress `t_ix` into its memo
    /// slot. The table growth behind the first solve dominates the DP's
    /// cost and reconstructions are nearly free once grown, so completing
    /// the slot costs barely more than the one row that triggered it —
    /// and an epoch whose pruning boundary shifted afterwards hits the
    /// memo instead of re-growing the egress's tables from scratch.
    fn fill_slot(&self, t_ix: usize, scratch: &mut EgressScratch, slot: &mut MemoSlot) {
        let m = self.closure.len();
        slot.reserve_exact(m);
        for s in 0..m {
            slot.push(if s == t_ix {
                None // a chain never starts at its own egress
            } else {
                match scratch.solver.solve(self.closure, s, self.n - 2) {
                    Ok(sol) => Some(Box::from(sol.first_n(self.n - 2))),
                    Err(_) => None,
                }
            });
        }
    }

    /// Best placement whose egress is closure node `t_ix`, skipping every
    /// ingress row whose bound strictly exceeds the incumbent. May return
    /// a non-minimal candidate for an egress that cannot win anyway (its
    /// pruned rows all cost strictly more than the optimum), never for one
    /// that can — see the module docs.
    ///
    /// Ingress rows are visited class by class: the bound is constant
    /// across a class, so one representative comparison admits or prunes
    /// the whole class. Surviving members still re-check against the
    /// (monotonically falling) incumbent before their individual solve.
    /// Which rows get solved can differ from a per-row-only test — an
    /// incumbent improvement mid-class prunes later siblings — but every
    /// pruned row satisfied `lb > incumbent ≥ optimum` at its test, so
    /// optimum-cost candidates (which have `lb ≤ optimum`) are never
    /// dropped and the per-sweep minimum is unchanged.
    fn best_for_egress(
        &self,
        t_ix: usize,
        scratch: &mut EgressScratch,
    ) -> Option<(Cost, Placement)> {
        scratch.solver.reset(self.closure, t_ix);
        let egress = self.closure.node(t_ix);
        // Held for the whole row loop: this worker is the only visitor of
        // egress `t_ix`, so the lock never blocks (see [`InteriorMemo`]).
        let mut memo_slot = self.memo.and_then(|m| m.slot(t_ix));
        let mut best_cost: Option<Cost> = None;
        let mut orbit_skipped = 0u64;
        for class in self.classes {
            // A valid bound for every member needs an ingress ≠ t_ix; for
            // the class containing t_ix the next member stands in (the
            // in-class distance is constant, so any sibling works).
            let rep = match class.iter().find(|&&s| s != t_ix) {
                Some(&rep) => rep,
                None => continue, // singleton {t_ix}: no ingress rows here
            };
            if self.pair_bound(rep, t_ix) > self.incumbent.load(Ordering::Acquire) {
                if class.len() > 1 {
                    // One comparison pruned a multi-member class.
                    orbit_skipped +=
                        u64::try_from(class.len() - usize::from(class.contains(&t_ix)))
                            .unwrap_or(u64::MAX);
                }
                continue;
            }
            for &s_ix in class {
                if s_ix == t_ix {
                    continue;
                }
                if self.pair_bound(s_ix, t_ix) > self.incumbent.load(Ordering::Acquire) {
                    continue;
                }
                if !self.fill_chain(s_ix, t_ix, egress, scratch, memo_slot.as_deref_mut()) {
                    continue;
                }
                let cost = self.agg.comm_cost_switches(self.dm, &scratch.chain);
                // AcqRel publishes the tighter bound to sibling workers as
                // soon as they next load it — pruning stays monotone.
                self.incumbent.fetch_min(cost, Ordering::AcqRel);
                let better = match best_cost {
                    None => true,
                    Some(c) => {
                        cost < c
                            || (cost == c
                                && scratch.chain.as_slice() < scratch.best_chain.as_slice())
                    }
                };
                if better {
                    best_cost = Some(cost);
                    std::mem::swap(&mut scratch.chain, &mut scratch.best_chain);
                }
            }
        }
        if orbit_skipped > 0 {
            // One batched add per egress — no atomics inside the row loop.
            ppdc_obs::global().add(ppdc_obs::names::SOLVER_DP_ORBIT_PRUNED, orbit_skipped);
        }
        best_cost.map(|c| (c, Placement::new_unchecked(scratch.best_chain.clone())))
    }

    /// Runs the parallel egress sweep over a pre-sorted `(bound, t_ix)`
    /// order and reduces to the lexicographically-least optimum. The order
    /// must come from [`egress_order`] (possibly with a warm-path prefix
    /// filter applied — dropping entries whose bound exceeds the seeded
    /// incumbent is behavior-identical to pruning them here, because the
    /// incumbent only falls).
    pub(crate) fn run_sweep(
        &self,
        order: &[(Cost, usize)],
    ) -> Result<(Placement, Cost), PlacementError> {
        // The vendored rayon parallelizes owned `Vec`s only; one m-entry
        // copy per solve is noise next to the stroll fills behind it.
        let results: Vec<Option<(Cost, Placement)>> = order
            .to_vec()
            .into_par_iter()
            .map(|(bound, t_ix)| {
                if bound > self.incumbent.load(Ordering::Acquire) {
                    let obs = ppdc_obs::global();
                    obs.add(ppdc_obs::names::SOLVER_DP_EGRESS_PRUNED, 1);
                    if self.class_size[t_ix] > 1 {
                        // The bound that killed this egress was computed
                        // once for its whole class.
                        obs.add(ppdc_obs::names::SOLVER_DP_ORBIT_PRUNED, 1);
                    }
                    return None;
                }
                EGRESS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut scratch) => self.best_for_egress(t_ix, &mut scratch),
                    // Re-entrant worker on this thread (no such path
                    // today): fresh scratch instead of a borrow panic.
                    Err(_) => self.best_for_egress(t_ix, &mut EgressScratch::default()),
                })
            })
            .collect();
        results
            .into_iter()
            .flatten()
            .min_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| a.1.switches().cmp(b.1.switches()))
            })
            .map(|(c, p)| (p, c))
            .ok_or(PlacementError::Stroll(
                ppdc_stroll::StrollError::Unreachable,
            ))
    }
}

/// The `n ≥ 3` best-first sweep over all egresses.
fn bb_sweep<D: DistanceOracle + ?Sized>(
    dm: &D,
    agg: &AttachAggregates,
    closure: &MetricClosure,
    n: usize,
) -> Result<(Placement, Cost), PlacementError> {
    let m = closure.len();
    let c_min = closure_c_min(closure);
    let interior = u64::try_from(n - 1).unwrap_or(u64::MAX);
    let rate = agg.total_rate();
    let seg_lb = sat_mul(interior, c_min);
    let a_in: Vec<Cost> = (0..m).map(|i| agg.a_in(closure.node(i))).collect();
    let a_out: Vec<Cost> = (0..m).map(|i| agg.a_out(closure.node(i))).collect();
    let classes = sweep_classes(closure, &a_in, &a_out);
    let class_size = class_sizes(&classes, m);
    let order = egress_order(closure, &a_in, &a_out, &classes, rate, seg_lb);
    let ctx = SweepCtx {
        dm,
        agg,
        closure,
        n,
        rate,
        seg_lb,
        a_in: &a_in,
        a_out: &a_out,
        classes: &classes,
        class_size: &class_size,
        memo: None,
        incumbent: AtomicU64::new(u64::MAX),
    };
    ctx.run_sweep(&order)
}

/// The pre-pruning exhaustive (ingress, egress) sweep, kept verbatim as the
/// bit-identity oracle for the branch-and-bound solver: `tests/proptests.rs`
/// asserts both return the same cost **and** switch sequence on random
/// workloads, and the benches use it as the baseline.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_exhaustive_with_agg<D: DistanceOracle + ?Sized>(
    _g: &Graph,
    dm: &D,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    if sfc.len() < 3 {
        // The small-n paths have no pruning to ablate.
        return dp_placement_inner(dm, w, sfc, agg, None);
    }
    let _span = ppdc_obs::global().span(ppdc_obs::names::SOLVER_DP);
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let n = sfc.len();
    let switches = agg.switches();
    if switches.len() < n {
        return Err(too_few(switches.len(), n));
    }
    let closure = MetricClosure::over(dm, switches);
    let results: Vec<(Cost, Placement)> = (0..switches.len())
        .into_par_iter()
        .filter_map(|t_ix| best_for_egress_exhaustive(dm, agg, &closure, t_ix, n))
        .collect();
    results
        .into_iter()
        .min_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.switches().cmp(b.1.switches()))
        })
        .map(|(c, p)| (p, c))
        .ok_or(PlacementError::Stroll(
            ppdc_stroll::StrollError::Unreachable,
        ))
}

/// Best placement whose egress is closure node `t_ix`, every ingress row
/// solved unconditionally (the oracle counterpart of
/// [`SweepCtx::best_for_egress`]).
fn best_for_egress_exhaustive<D: DistanceOracle + ?Sized>(
    dm: &D,
    agg: &AttachAggregates,
    closure: &MetricClosure,
    t_ix: usize,
    n: usize,
) -> Option<(Cost, Placement)> {
    let sources: Vec<usize> = (0..closure.len()).filter(|&i| i != t_ix).collect();
    let solutions = dp_stroll_all_sources(closure, &sources, t_ix, n - 2);
    let egress = closure.node(t_ix);
    let mut best: Option<(Cost, Placement)> = None;
    for (&s_ix, sol) in sources.iter().zip(&solutions) {
        let Ok(sol) = sol else { continue };
        let ingress = closure.node(s_ix);
        let mut chain = Vec::with_capacity(n);
        chain.push(ingress);
        chain.extend_from_slice(sol.first_n(n - 2));
        chain.push(egress);
        let p = Placement::new_unchecked(chain);
        let cost = agg.comm_cost(dm, &p);
        if best
            .as_ref()
            .is_none_or(|(c, bp)| cost < *c || (cost == *c && p.switches() < bp.switches()))
        {
            best = Some((cost, p));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_model::comm_cost;
    use ppdc_topology::builders::{fat_tree, linear};
    use ppdc_topology::DistanceMatrix;

    #[test]
    fn lower_bound_is_admissible_and_tight_for_short_chains() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..hosts.len() {
            w.add_pair(
                hosts[i],
                hosts[(i * 7 + 3) % hosts.len()],
                1 + (i % 9) as u64,
            );
        }
        let agg = AttachAggregates::build(&g, &dm, &w);
        for n in 1..=4usize {
            let sfc = Sfc::of_len(n).unwrap();
            let (_, opt) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            let lb = placement_cost_lower_bound(&dm, &agg, n);
            assert!(lb <= opt, "n={n}: lb {lb} > optimum {opt}");
            if n <= 2 {
                assert_eq!(lb, opt, "n={n}: the pairwise bound is exact");
            }
        }
        // Restricted candidate sets bound their restricted optimum too.
        let all: Vec<NodeId> = g.switches().collect();
        let subset: Vec<NodeId> = all.iter().copied().step_by(2).collect();
        let ragg = AttachAggregates::build_restricted(&g, &dm, &w, &subset);
        let sfc = Sfc::of_len(3).unwrap();
        let (_, ropt) = dp_placement_with_agg(&g, &dm, &w, &sfc, &ragg).unwrap();
        let rlb = placement_cost_lower_bound(&dm, &ragg, 3);
        assert!(rlb <= ropt);
    }

    #[test]
    fn lower_bound_degenerate_inputs_are_vacuous() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 5);
        let agg = AttachAggregates::build(&g, &dm, &w);
        assert_eq!(placement_cost_lower_bound(&dm, &agg, 0), INFINITY);
        // linear(3) has 3 switches; a 4-VNF chain cannot be placed.
        assert_eq!(placement_cost_lower_bound(&dm, &agg, 4), INFINITY);
    }

    #[test]
    fn example1_initial_placement() {
        // Paper Fig. 3(a): λ = ⟨100, 1⟩ on the 5-switch linear PPDC.
        // The optimal 2-VNF placement costs 410 (f1@s1, f2@s2 is one
        // optimum; the mirrored f1@s5, f2@s4 is the other).
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h1, 100);
        w.add_pair(h2, h2, 1);
        let sfc = Sfc::of_len(2).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost, 410);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        // After the rate swap the optimum mirrors to 410 as well.
        w.set_rates(&[1, 100]).unwrap();
        let (p2, cost2) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost2, 410);
        assert_ne!(p.switches(), p2.switches());
    }

    #[test]
    fn single_vnf_is_weighted_median() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let sfc = Sfc::of_len(1).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        // Any switch on the h1–h2 line gives cost 6.
        assert_eq!(cost, 6);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn three_vnfs_on_linear() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 10);
        let sfc = Sfc::of_len(3).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        // Three consecutive switches on the line: still the plain 6-hop
        // route, cost 60.
        assert_eq!(cost, 60);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn reported_cost_is_exact_eq1_on_fat_tree() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], 9);
        w.add_pair(hosts[2], hosts[13], 4);
        w.add_pair(hosts[7], hosts[7], 70);
        for n in 1..=5 {
            let sfc = Sfc::of_len(n).unwrap();
            let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
            assert_eq!(cost, comm_cost(&dm, &w, &p), "n={n}");
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn pruned_sweep_matches_exhaustive_oracle() {
        // The branch-and-bound must agree with the exhaustive sweep bit
        // for bit — cost AND switch sequence — across chain lengths and
        // fabrics (proptests cover random workloads on top of this).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..8 {
            w.add_pair(hosts[i], hosts[15 - i], (i as u64).pow(2) + 3);
        }
        for n in 3..=6 {
            let sfc = Sfc::of_len(n).unwrap();
            let agg = AttachAggregates::build(&g, &dm, &w);
            let (p_bb, c_bb) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            let (p_ex, c_ex) = dp_placement_exhaustive_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            assert_eq!(c_bb, c_ex, "n={n}");
            assert_eq!(p_bb.switches(), p_ex.switches(), "n={n}");
        }
    }

    #[test]
    fn interchange_classes_recover_fat_tree_orbits() {
        // With a uniform workload surface (all attach terms zero), the
        // interchangeability classes over a k=4 fat-tree's switches are
        // exactly the automorphism orbits that keep exact pruning sound:
        // cores merge per core group, edges merge per pod, and aggregation
        // switches stay singletons (agg `a` is 1 hop from core group `a`
        // but 3 hops from every other group, so agg rows never agree).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let switches: Vec<NodeId> = g.switches().collect();
        let closure = MetricClosure::over(&dm, &switches);
        let zero = vec![0u64; switches.len()];
        let classes = interchange_classes(&closure, &zero, &zero);
        // Closure index order: cores 0..4, then per pod ⟨agg, agg, edge,
        // edge⟩ at 4 + 4p.
        let mut expect: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3]];
        for p in 0..4 {
            let base = 4 + 4 * p;
            expect.push(vec![base]);
            expect.push(vec![base + 1]);
            expect.push(vec![base + 2, base + 3]);
        }
        expect.sort_unstable_by_key(|c| c[0]);
        assert_eq!(classes, expect);
        // Distinct attach terms split classes back apart.
        let mut a_in = zero.clone();
        a_in[0] = 7;
        let split = interchange_classes(&closure, &a_in, &zero);
        assert_eq!(split.len(), classes.len() + 1);
        assert!(split.contains(&vec![0]));
    }

    #[test]
    fn sweep_classes_cutoff_is_singletons_below_orbits_above() {
        // k = 4 (20 switch candidates) sits below ORBIT_MIN_SWITCHES: the
        // sweep partition is all singletons and no fingerprints are
        // needed. k = 16 (320) sits above: the partition is exactly the
        // full interchangeability classification, hashed or not.
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let switches: Vec<NodeId> = g.switches().collect();
        assert!(switches.len() < ORBIT_MIN_SWITCHES);
        let closure = MetricClosure::over(&dm, &switches);
        let zero = vec![0u64; switches.len()];
        let small = sweep_classes(&closure, &zero, &zero);
        assert_eq!(
            small,
            (0..switches.len()).map(|i| vec![i]).collect::<Vec<_>>()
        );
        assert_eq!(
            small,
            sweep_classes_with_hashes(&closure, &zero, &zero, &[])
        );

        let ft = ppdc_topology::FatTree::build(16).unwrap();
        let oracle = ppdc_topology::FatTreeOracle::new(&ft);
        let big_switches: Vec<NodeId> = ft.graph().switches().collect();
        assert!(big_switches.len() >= ORBIT_MIN_SWITCHES);
        let big_closure = MetricClosure::over(&oracle, &big_switches);
        let zeros = vec![0u64; big_switches.len()];
        let orbits = interchange_classes(&big_closure, &zeros, &zeros);
        assert!(orbits.len() < big_switches.len(), "k=16 must compress");
        assert_eq!(orbits, sweep_classes(&big_closure, &zeros, &zeros));
        let hashes = closure_row_hashes(&big_closure);
        assert_eq!(
            orbits,
            sweep_classes_with_hashes(&big_closure, &zeros, &zeros, &hashes)
        );
    }

    #[test]
    fn oracle_driven_solve_matches_dense_exhaustive() {
        // The whole point of the trait: an analytic fat-tree oracle fed to
        // the orbit-compressed B&B must reproduce the dense-matrix
        // exhaustive sweep bit for bit.
        let ft = ppdc_topology::FatTree::build(4).unwrap();
        let oracle = ppdc_topology::FatTreeOracle::new(&ft);
        let g = ft.graph();
        let dm = DistanceMatrix::build(g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for (i, &h) in hosts.iter().enumerate() {
            w.add_pair(h, hosts[(i * 7 + 3) % hosts.len()], (3 * i as u64) % 11 + 1);
        }
        for n in 1..=5 {
            let sfc = Sfc::of_len(n).unwrap();
            let agg = AttachAggregates::build(g, &oracle, &w);
            let (p_o, c_o) = dp_placement_with_agg(g, &oracle, &w, &sfc, &agg).unwrap();
            let agg_d = AttachAggregates::build(g, &dm, &w);
            let (p_d, c_d) = dp_placement_exhaustive_with_agg(g, &dm, &w, &sfc, &agg_d).unwrap();
            assert_eq!(c_o, c_d, "n={n}");
            assert_eq!(p_o.switches(), p_d.switches(), "n={n}");
        }
    }

    #[test]
    fn cached_closure_entry_point_matches() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[1], hosts[9], 17);
        w.add_pair(hosts[4], hosts[2], 3);
        let sfc = Sfc::of_len(4).unwrap();
        let agg = AttachAggregates::build(&g, &dm, &w);
        let mut cc = ppdc_topology::CachedClosure::new();
        let (p1, c1) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
        for _ in 0..2 {
            let closure = cc.get_or_rebuild(&dm, agg.switches());
            let (p2, c2) = dp_placement_with_closure(&g, &dm, &w, &sfc, &agg, closure).unwrap();
            assert_eq!(c1, c2);
            assert_eq!(p1.switches(), p2.switches());
        }
    }

    #[test]
    fn rejects_empty_workload() {
        let (g, ..) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let sfc = Sfc::of_len(2).unwrap();
        assert!(matches!(
            dp_placement(&g, &dm, &Workload::new(), &sfc),
            Err(PlacementError::NoFlows)
        ));
    }

    #[test]
    fn rejects_too_long_sfc() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let sfc = Sfc::of_len(4).unwrap();
        assert!(matches!(
            dp_placement(&g, &dm, &w, &sfc),
            Err(PlacementError::Model(_))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..6 {
            w.add_pair(hosts[i], hosts[15 - i], (i as u64 + 1) * 13);
        }
        let sfc = Sfc::of_len(4).unwrap();
        let (p1, c1) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        let (p2, c2) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(p1.switches(), p2.switches());
    }
}
