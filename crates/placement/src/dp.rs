//! **DP** — Algorithm 3: VNF placement for the multi-flow TOP.
//!
//! The algorithm sweeps all ordered (ingress, egress) switch pairs. For
//! each pair it charges the aggregate attachment cost
//! `A_in[ingress] + A_out[egress]` and fills the interior of the chain by
//! solving an `(n−2)`-stroll between the two switches with Algorithm 2.
//!
//! Because the stroll DP's tables depend only on the *target*, all
//! ingresses for one egress share a single table
//! ([`ppdc_stroll::dp_stroll_all_sources`]), collapsing the pair sweep from
//! `O(|V_s|²)` DP runs to `O(|V_s|)`. Egress switches are processed in
//! parallel with rayon.

use crate::aggregates::AttachAggregates;
use crate::PlacementError;
use ppdc_model::{Placement, Sfc, Workload};
use ppdc_stroll::dp_stroll_all_sources;
use ppdc_topology::{Cost, DistanceMatrix, Graph, MetricClosure, NodeId};
use rayon::prelude::*;

fn too_few(switches: usize, vnfs: usize) -> PlacementError {
    PlacementError::Model(ppdc_model::ModelError::TooFewSwitches { switches, vnfs })
}

/// Runs Algorithm 3, returning the placement and its exact `C_a`.
///
/// # Errors
///
/// Fails when the workload has no flows, the SFC is longer than the number
/// of switches, or the graph is disconnected.
pub fn dp_placement(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let agg = AttachAggregates::build(g, dm, w);
    dp_placement_with_agg(g, dm, w, sfc, &agg)
}

/// [`dp_placement`] against caller-supplied aggregates.
///
/// The epoch loop of the simulator keeps one [`AttachAggregates`] alive all
/// day and folds each hour's rate deltas into it
/// ([`AttachAggregates::apply_rate_deltas`]); this entry point lets it run
/// Algorithm 3 without rebuilding the arrays. `agg` must describe `w` on
/// `g`/`dm`.
///
/// Candidate switches are taken from `agg` itself
/// ([`AttachAggregates::switches`]), so aggregates built with
/// [`AttachAggregates::build_restricted`] confine the placement to their
/// candidate set — this is how the fault-tolerant loop keeps VNFs inside the
/// serving component of a partitioned fabric. For full aggregates the
/// candidate set equals `g.switches()` and behavior is unchanged.
///
/// # Errors
///
/// Same conditions as [`dp_placement`].
pub fn dp_placement_with_agg(
    _g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    let _span = ppdc_obs::global().span(ppdc_obs::names::SOLVER_DP);
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let n = sfc.len();
    let switches: Vec<NodeId> = agg.switches().to_vec();
    if switches.len() < n {
        return Err(PlacementError::Model(
            ppdc_model::ModelError::TooFewSwitches {
                switches: switches.len(),
                vnfs: n,
            },
        ));
    }
    let result = match n {
        1 => {
            // The length check above guarantees at least one switch.
            let Some(best) = switches
                .iter()
                .map(|&x| (agg.a_in(x) + agg.a_out(x), x))
                .min()
            else {
                return Err(too_few(0, n));
            };
            Ok((Placement::new_unchecked(vec![best.1]), best.0))
        }
        2 => {
            let rate = agg.total_rate();
            let mut best: Option<(Cost, NodeId, NodeId)> = None;
            for &i in &switches {
                for &j in &switches {
                    if i == j {
                        continue;
                    }
                    let cost = agg.a_in(i) + rate * dm.cost(i, j) + agg.a_out(j);
                    if best.is_none_or(|(c, ..)| cost < c) {
                        best = Some((cost, i, j));
                    }
                }
            }
            // The length check above guarantees at least two switches.
            let Some((cost, i, j)) = best else {
                return Err(too_few(switches.len(), n));
            };
            Ok((Placement::new_unchecked(vec![i, j]), cost))
        }
        _ => {
            let closure = MetricClosure::over(dm, &switches);
            let results: Vec<(Cost, Placement)> = (0..switches.len())
                .into_par_iter()
                .filter_map(|t_ix| best_for_egress(dm, agg, &closure, t_ix, n))
                .collect();
            results
                .into_iter()
                .min_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then_with(|| a.1.switches().cmp(b.1.switches()))
                })
                .map(|(c, p)| (p, c))
                .ok_or(PlacementError::Stroll(
                    ppdc_stroll::StrollError::Unreachable,
                ))
        }
    };
    // `strict-invariants` contract: Algorithm 3 must return an injective
    // placement (one VNF per switch, footnote 3 of the paper) whose
    // reported cost matches an independent aggregate re-evaluation.
    #[cfg(feature = "strict-invariants")]
    if let Ok((p, c)) = &result {
        assert!(
            p.is_injective(),
            "dp_placement returned a non-injective placement: {:?}",
            p.switches()
        );
        assert_eq!(
            *c,
            agg.comm_cost(dm, p),
            "dp_placement's reported cost disagrees with re-evaluation"
        );
    }
    result
}

/// Best placement whose egress is closure node `t_ix`.
fn best_for_egress(
    dm: &DistanceMatrix,
    agg: &AttachAggregates,
    closure: &MetricClosure,
    t_ix: usize,
    n: usize,
) -> Option<(Cost, Placement)> {
    let sources: Vec<usize> = (0..closure.len()).filter(|&i| i != t_ix).collect();
    let solutions = dp_stroll_all_sources(closure, &sources, t_ix, n - 2);
    let egress = closure.node(t_ix);
    let mut best: Option<(Cost, Placement)> = None;
    for (&s_ix, sol) in sources.iter().zip(&solutions) {
        let Ok(sol) = sol else { continue };
        let ingress = closure.node(s_ix);
        let mut chain = Vec::with_capacity(n);
        chain.push(ingress);
        chain.extend_from_slice(sol.first_n(n - 2));
        chain.push(egress);
        let p = Placement::new_unchecked(chain);
        let cost = agg.comm_cost(dm, &p);
        if best
            .as_ref()
            .is_none_or(|(c, bp)| cost < *c || (cost == *c && p.switches() < bp.switches()))
        {
            best = Some((cost, p));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_model::comm_cost;
    use ppdc_topology::builders::{fat_tree, linear};

    #[test]
    fn example1_initial_placement() {
        // Paper Fig. 3(a): λ = ⟨100, 1⟩ on the 5-switch linear PPDC.
        // The optimal 2-VNF placement costs 410 (f1@s1, f2@s2 is one
        // optimum; the mirrored f1@s5, f2@s4 is the other).
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h1, 100);
        w.add_pair(h2, h2, 1);
        let sfc = Sfc::of_len(2).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost, 410);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        // After the rate swap the optimum mirrors to 410 as well.
        w.set_rates(&[1, 100]).unwrap();
        let (p2, cost2) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost2, 410);
        assert_ne!(p.switches(), p2.switches());
    }

    #[test]
    fn single_vnf_is_weighted_median() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let sfc = Sfc::of_len(1).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        // Any switch on the h1–h2 line gives cost 6.
        assert_eq!(cost, 6);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn three_vnfs_on_linear() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 10);
        let sfc = Sfc::of_len(3).unwrap();
        let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        // Three consecutive switches on the line: still the plain 6-hop
        // route, cost 60.
        assert_eq!(cost, 60);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn reported_cost_is_exact_eq1_on_fat_tree() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], 9);
        w.add_pair(hosts[2], hosts[13], 4);
        w.add_pair(hosts[7], hosts[7], 70);
        for n in 1..=5 {
            let sfc = Sfc::of_len(n).unwrap();
            let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
            assert_eq!(cost, comm_cost(&dm, &w, &p), "n={n}");
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn rejects_empty_workload() {
        let (g, ..) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let sfc = Sfc::of_len(2).unwrap();
        assert!(matches!(
            dp_placement(&g, &dm, &Workload::new(), &sfc),
            Err(PlacementError::NoFlows)
        ));
    }

    #[test]
    fn rejects_too_long_sfc() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let sfc = Sfc::of_len(4).unwrap();
        assert!(matches!(
            dp_placement(&g, &dm, &w, &sfc),
            Err(PlacementError::Model(_))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..6 {
            w.add_pair(hosts[i], hosts[15 - i], (i as u64 + 1) * 13);
        }
        let sfc = Sfc::of_len(4).unwrap();
        let (p1, c1) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        let (p2, c2) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(p1.switches(), p2.switches());
    }
}
