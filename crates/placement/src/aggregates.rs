//! Attach-cost aggregates: the workload-wide ingress/egress cost arrays.
//!
//! `C_a(p)` (Eq. 1) decomposes into a chain term shared by all flows and a
//! per-flow attachment term that depends only on the ingress and egress
//! switches:
//!
//! `C_a(p) = Σλ · chain(p)  +  A_in[p(1)]  +  A_out[p(n)]`
//!
//! where `A_in[x] = Σ_i λ_i·c(s(v_i), x)` and
//! `A_out[x] = Σ_i λ_i·c(x, s(v'_i))`. Precomputing the two arrays makes
//! evaluating a candidate placement `O(n)` regardless of the number of
//! flows — the enabling trick for Algorithm 3's `O(|V_s|²)` pair sweep and
//! the branch-and-bound of Algorithm 4.
//!
//! # Attach-node aggregation
//!
//! Flows enter the fabric only at their VMs' attach nodes, so the sums
//! group by endpoint host:
//!
//! `A_in[x] = Σ_h R_out[h]·c(h, x)` with `R_out[h] = Σ_{s(v_i)=h} λ_i`
//!
//! (and symmetrically `R_in[h]` for `A_out`). Folding the workload into the
//! per-host rate masses first makes [`AttachAggregates::build`]
//! `O(|flows| + |V_h|·|V_s|)` instead of `O(|flows|·|V_s|)` — many VMs
//! share an attach node, and a production workload has orders of magnitude
//! more flows than hosts. All arithmetic is exact `u64`, so regrouping the
//! sum changes nothing: the arrays are bit-identical to the flow-by-flow
//! ones (kept as [`AttachAggregates::build_flow_by_flow`] for tests and
//! benches).
//!
//! The same grouping makes TOM epochs incremental: when only rates change
//! (hosts and distances fixed), [`AttachAggregates::apply_rate_deltas`]
//! folds the rate deltas into per-host masses and adds
//! `Δmass·c(h, x)` to each switch — `O(|Δ| + |touched hosts|·|V_s|)` per
//! epoch instead of a full rebuild.

use ppdc_model::{FlowId, Placement, Workload};
use ppdc_topology::{Cost, DistanceOracle, Graph, NodeId, INFINITY};
use rayon::prelude::*;

/// One `λ·c(h, x)` attachment term, with the unreachable sentinel kept
/// intact: a positive mass across an [`INFINITY`] distance contributes
/// exactly `INFINITY` (never the overflowing product), and a zero mass
/// contributes 0 regardless of reachability.
#[inline]
fn attach_term(mass: u64, cost: Cost) -> Cost {
    if mass == 0 {
        0
    } else if cost >= INFINITY {
        INFINITY
    } else {
        mass * cost
    }
}

/// Saturating aggregate accumulation: any unreachable contribution pins the
/// aggregate at exactly [`INFINITY`] (the documented sentinel) instead of
/// wrapping.
#[inline]
fn attach_acc(acc: Cost, mass: u64, cost: Cost) -> Cost {
    acc.saturating_add(attach_term(mass, cost)).min(INFINITY)
}

/// Typed failure of the checked delta folds
/// ([`AttachAggregates::try_apply_rate_deltas`] /
/// [`AttachAggregates::try_apply_mass_deltas`]). The aggregates are left
/// untouched when a fold fails — updates are staged and committed only
/// after every entry validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateError {
    /// A fold drove the named quantity negative or beyond `u64` range —
    /// the deltas disagree with the rates the aggregates were built from.
    OutOfRange {
        /// Which aggregate went out of range (`"A_in"`, `"A_out"`, or
        /// `"the total rate"`).
        what: &'static str,
    },
    /// An intermediate `Δmass · c` product or running sum exceeded `i128`
    /// — only reachable from adversarially large mass deltas, never from
    /// deltas derived from real `u64` rates.
    Overflow {
        /// Which aggregate the overflowing term was headed for.
        what: &'static str,
    },
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::OutOfRange { what } => {
                write!(f, "rate deltas drove {what} negative or out of range")
            }
            AggregateError::Overflow { what } => {
                write!(f, "rate-delta fold overflowed while updating {what}")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// One attach node's net rate-mass change, the unit the streaming engine's
/// per-shard tree-reduce folds over: `d_out` is the change of
/// `R_out[host]` (the host's total source rate), `d_in` of `R_in[host]`.
/// Deltas are `i128` so any sum of per-flow `i64` deltas — including a
/// stream that transiently overshoots `u64` range before a compensating
/// delta lands — accumulates exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostMassDelta {
    /// The attach node (host) whose masses changed.
    pub host: NodeId,
    /// Net change of the host's outgoing rate mass `R_out[host]`.
    pub d_out: i128,
    /// Net change of the host's incoming rate mass `R_in[host]`.
    pub d_in: i128,
}

/// Precomputed `A_in` / `A_out` arrays plus the total rate.
#[derive(Debug, Clone)]
pub struct AttachAggregates {
    a_in: Vec<Cost>,
    a_out: Vec<Cost>,
    total_rate: u64,
    switches: Vec<NodeId>,
}

/// Per-attach-node rate masses: `out_mass[h] = Σ_{src host = h} λ`,
/// `in_mass[h] = Σ_{dst host = h} λ`, with the touched node ids listed once.
struct RateMasses {
    out_mass: Vec<u64>,
    in_mass: Vec<u64>,
    touched: Vec<u32>,
    // Membership must be tracked explicitly: a zero-rate flow (or deltas
    // that cancel) can leave both masses at 0 for a host that is already
    // in `touched`, and a mass==0 test would push it again — the switch
    // sweep would then count that host twice.
    seen: Vec<bool>,
}

impl RateMasses {
    fn new(num_nodes: usize) -> Self {
        RateMasses {
            out_mass: vec![0; num_nodes],
            in_mass: vec![0; num_nodes],
            touched: Vec::new(),
            seen: vec![false; num_nodes],
        }
    }

    #[inline]
    fn touch(&mut self, h: NodeId) {
        if !self.seen[h.index()] {
            self.seen[h.index()] = true;
            self.touched.push(h.0);
        }
    }

    #[inline]
    fn add(&mut self, src: NodeId, dst: NodeId, rate: u64) {
        self.touch(src);
        self.out_mass[src.index()] += rate;
        self.touch(dst);
        self.in_mass[dst.index()] += rate;
    }
}

impl AttachAggregates {
    /// Builds the aggregates for `w` over all switches of `g` by first
    /// folding the workload into per-attach-node rate masses
    /// (`O(|flows| + |V_h|·|V_s|)`). Bit-identical to
    /// [`AttachAggregates::build_flow_by_flow`].
    pub fn build<D: DistanceOracle + ?Sized>(g: &Graph, dm: &D, w: &Workload) -> Self {
        let _span = ppdc_obs::global().span(ppdc_obs::names::AGG_BUILD);
        let switches: Vec<NodeId> = g.switches().collect();
        Self::build_restricted(g, dm, w, &switches)
    }

    /// Like [`AttachAggregates::build`], but over a caller-chosen candidate
    /// switch set — the fault-tolerant epoch loop restricts placement to
    /// the serving component's alive switches this way.
    ///
    /// Unreachable attachments saturate: a candidate `x` that cannot reach
    /// some host with nonzero mass gets `A_in[x]` (or `A_out[x]`) pinned at
    /// exactly [`INFINITY`] — the documented sentinel — rather than a
    /// wrapped product. Zero-mass hosts never contribute, so masking
    /// stranded flows' rates to 0 keeps the arrays finite even on a
    /// partitioned fabric. [`AttachAggregates::apply_rate_deltas`] must
    /// only be fed aggregates whose entries are all finite (the epoch loop
    /// rebuilds on failure/repair events before delta-feeding resumes).
    pub fn build_restricted<D: DistanceOracle + ?Sized>(
        g: &Graph,
        dm: &D,
        w: &Workload,
        candidates: &[NodeId],
    ) -> Self {
        let _span = ppdc_obs::global().span(ppdc_obs::names::AGG_BUILD_RESTRICTED);
        let n = g.num_nodes();
        let mut masses = RateMasses::new(n);
        let mut total_rate = 0u64;
        for (_, src, dst, rate) in w.iter() {
            masses.add(src, dst, rate);
            total_rate += rate;
        }
        let mut a_in = vec![0; n];
        let mut a_out = vec![0; n];
        for &x in candidates {
            let (mut ain, mut aout) = (0, 0);
            for &h in &masses.touched {
                let h = NodeId(h);
                ain = attach_acc(ain, masses.out_mass[h.index()], dm.cost(h, x));
                aout = attach_acc(aout, masses.in_mass[h.index()], dm.cost(x, h));
            }
            a_in[x.index()] = ain;
            a_out[x.index()] = aout;
        }
        // One batched count for the whole sweep (two queries per
        // touched-host/candidate pair) — no per-query atomics.
        ppdc_obs::global().add(
            ppdc_obs::names::ORACLE_QUERIES,
            u64::try_from(2 * masses.touched.len() * candidates.len()).unwrap_or(u64::MAX),
        );
        let agg = AttachAggregates {
            a_in,
            a_out,
            total_rate,
            switches: candidates.to_vec(),
        };
        // `strict-invariants` contract: the fold over `w.iter()` must land
        // on the workload's own cached total.
        #[cfg(feature = "strict-invariants")]
        assert_eq!(
            agg.total_rate,
            w.total_rate(),
            "aggregate total rate disagrees with the workload"
        );
        agg
    }

    /// The original `O(|flows|·|V_s|)` build, one flow at a time. Kept as
    /// the parity oracle for [`AttachAggregates::build`] /
    /// [`AttachAggregates::apply_rate_deltas`] and as the bench baseline.
    pub fn build_flow_by_flow<D: DistanceOracle + ?Sized>(g: &Graph, dm: &D, w: &Workload) -> Self {
        let switches: Vec<NodeId> = g.switches().collect();
        Self::build_restricted_flow_by_flow(g, dm, w, &switches)
    }

    /// Flow-by-flow parity oracle for [`AttachAggregates::build_restricted`]
    /// (same candidate restriction and saturation semantics).
    pub fn build_restricted_flow_by_flow<D: DistanceOracle + ?Sized>(
        g: &Graph,
        dm: &D,
        w: &Workload,
        candidates: &[NodeId],
    ) -> Self {
        let n = g.num_nodes();
        let mut a_in = vec![0; n];
        let mut a_out = vec![0; n];
        for &x in candidates {
            let (mut ain, mut aout) = (0, 0);
            for (_, src, dst, rate) in w.iter() {
                ain = attach_acc(ain, rate, dm.cost(src, x));
                aout = attach_acc(aout, rate, dm.cost(x, dst));
            }
            a_in[x.index()] = ain;
            a_out[x.index()] = aout;
        }
        AttachAggregates {
            a_in,
            a_out,
            total_rate: w.total_rate(),
            switches: candidates.to_vec(),
        }
    }

    /// Folds per-flow rate changes into the aggregates in place:
    /// `deltas` holds `(flow, new λ − old λ)` entries; `w` supplies the
    /// (unchanged) flow endpoints and must already — or still — describe
    /// the same VM→host assignment the aggregates were built with.
    ///
    /// The update groups deltas by endpoint host and then adjusts every
    /// switch once per touched host: `O(|Δ| + |touched hosts|·|V_s|)`.
    /// Because all arithmetic is exact integer math, the result is
    /// bit-identical to a from-scratch rebuild under the new rates.
    ///
    /// # Panics
    ///
    /// Panics (in all build profiles) if a delta drives an aggregate
    /// negative — i.e. the deltas disagree with the rates the aggregates
    /// were built from. [`AttachAggregates::try_apply_rate_deltas`] is the
    /// typed-error twin.
    pub fn apply_rate_deltas<D: DistanceOracle + ?Sized>(
        &mut self,
        dm: &D,
        w: &Workload,
        deltas: &[(FlowId, i64)],
    ) {
        let applied = self.try_apply_rate_deltas(dm, w, deltas);
        if let Err(e) = applied {
            // analyzer:allow(no-panic) -- documented loud-panic contract: inconsistent deltas are caller bugs
            panic!("{e}");
        }
    }

    /// Fallible twin of [`AttachAggregates::apply_rate_deltas`].
    ///
    /// Per-host deltas accumulate in `i128`, so a delta stream that
    /// briefly overshoots — the running sum exceeding `u64`/`i64` range
    /// before a compensating delta lands in the same batch — folds
    /// exactly; only the *net* per-host mass and the final aggregates must
    /// be representable. On error the aggregates are left untouched.
    ///
    /// # Errors
    ///
    /// [`AggregateError::OutOfRange`] when the net deltas disagree with
    /// the rates the aggregates were built from,
    /// [`AggregateError::Overflow`] on (adversarial) `i128` intermediate
    /// overflow.
    pub fn try_apply_rate_deltas<D: DistanceOracle + ?Sized>(
        &mut self,
        dm: &D,
        w: &Workload,
        deltas: &[(FlowId, i64)],
    ) -> Result<(), AggregateError> {
        if deltas.is_empty() {
            return Ok(());
        }
        let obs = ppdc_obs::global();
        let _span = obs.span(ppdc_obs::names::AGG_APPLY_DELTAS);
        obs.add(
            ppdc_obs::names::AGG_DELTAS_APPLIED,
            u64::try_from(deltas.len()).unwrap_or(u64::MAX),
        );
        let n = self.a_in.len();
        let mut out_delta = vec![0i128; n];
        let mut in_delta = vec![0i128; n];
        let mut touched: Vec<u32> = Vec::new();
        // Explicit membership marker: a host's accumulated delta can
        // transiently cancel to 0 mid-list, and a delta==0 test would push
        // it into `touched` twice — applying its delta twice to every
        // switch.
        let mut seen = vec![false; n];
        let mut total_delta = 0i128;
        for &(f, d) in deltas {
            if d == 0 {
                continue;
            }
            let (src, dst) = w.endpoints(f);
            if !seen[src.index()] {
                seen[src.index()] = true;
                touched.push(src.0);
            }
            out_delta[src.index()] += i128::from(d);
            if !seen[dst.index()] {
                seen[dst.index()] = true;
                touched.push(dst.0);
            }
            in_delta[dst.index()] += i128::from(d);
            total_delta += i128::from(d);
        }
        // A host's net delta can cancel back to zero; the switch sweep
        // multiplies by 0 then, which is still correct.
        let mass_deltas: Vec<HostMassDelta> = touched
            .iter()
            .map(|&h| {
                let h = NodeId(h);
                HostMassDelta {
                    host: h,
                    d_out: out_delta[h.index()],
                    d_in: in_delta[h.index()],
                }
            })
            .collect();
        self.fold_mass_deltas(dm, &mass_deltas, total_delta)?;
        // `strict-invariants` contract: the caller must have folded the
        // same deltas into `w` before (or after) feeding them here, so the
        // incremental total and the workload's total stay in lock-step.
        #[cfg(feature = "strict-invariants")]
        assert_eq!(
            self.total_rate,
            w.total_rate(),
            "rate deltas left the aggregate total out of sync with the workload"
        );
        #[cfg(not(feature = "strict-invariants"))]
        let _only_read_under_strict_invariants = w;
        Ok(())
    }

    /// Folds pre-grouped per-host mass deltas into the aggregates — the
    /// streaming engine's entry point: each shard of a
    /// `ppdc_sim::stream::ShardedFlowStore` reduces its flow deltas to a
    /// handful of [`HostMassDelta`]s, the shards tree-merge them, and one
    /// switch sweep lands the merged list here. `total_delta` is the net
    /// change of `Σλ`. Exactly the same arithmetic as
    /// [`AttachAggregates::try_apply_rate_deltas`], so the result stays
    /// bit-identical to a from-scratch rebuild. On error the aggregates
    /// are left untouched.
    ///
    /// # Errors
    ///
    /// As [`AttachAggregates::try_apply_rate_deltas`].
    pub fn try_apply_mass_deltas<D: DistanceOracle + ?Sized>(
        &mut self,
        dm: &D,
        deltas: &[HostMassDelta],
        total_delta: i128,
    ) -> Result<(), AggregateError> {
        if deltas.is_empty() && total_delta == 0 {
            return Ok(());
        }
        let _span = ppdc_obs::global().span(ppdc_obs::names::AGG_APPLY_DELTAS);
        self.fold_mass_deltas(dm, deltas, total_delta)
    }

    /// The shared switch sweep: stage `A_in`/`A_out` updates for every
    /// candidate, validate all of them, then commit — a failed fold never
    /// leaves the aggregates half-updated.
    fn fold_mass_deltas<D: DistanceOracle + ?Sized>(
        &mut self,
        dm: &D,
        deltas: &[HostMassDelta],
        total_delta: i128,
    ) -> Result<(), AggregateError> {
        // Every switch's (A_in, A_out) pair is staged independently from
        // immutable state, so the sweep parallelizes without any cross-
        // switch reduction — per-switch arithmetic is the same serial
        // loop either way, keeping the result bit-identical. Small folds
        // stay on the calling thread.
        let a_in = &self.a_in;
        let a_out = &self.a_out;
        let switches = &self.switches;
        let stage_one = |x: NodeId| -> Result<(usize, Cost, Cost), AggregateError> {
            let mut ain = i128::from(a_in[x.index()]);
            let mut aout = i128::from(a_out[x.index()]);
            for d in deltas {
                // A zero-sided mass contributes an exact zero: skipping
                // the term (and its oracle query) is bit-identical.
                if d.d_out != 0 {
                    ain = d
                        .d_out
                        .checked_mul(i128::from(dm.cost(d.host, x)))
                        .and_then(|t| ain.checked_add(t))
                        .ok_or(AggregateError::Overflow { what: "A_in" })?;
                }
                if d.d_in != 0 {
                    aout = d
                        .d_in
                        .checked_mul(i128::from(dm.cost(x, d.host)))
                        .and_then(|t| aout.checked_add(t))
                        .ok_or(AggregateError::Overflow { what: "A_out" })?;
                }
            }
            let ain =
                Cost::try_from(ain).map_err(|_| AggregateError::OutOfRange { what: "A_in" })?;
            let aout =
                Cost::try_from(aout).map_err(|_| AggregateError::OutOfRange { what: "A_out" })?;
            Ok((x.index(), ain, aout))
        };
        const PARALLEL_FOLD_WORK: usize = 1 << 15;
        let staged: Vec<(usize, Cost, Cost)> =
            if switches.len().saturating_mul(deltas.len()) < PARALLEL_FOLD_WORK {
                switches
                    .iter()
                    .map(|&x| stage_one(x))
                    .collect::<Result<_, _>>()?
            } else {
                (0..switches.len())
                    .into_par_iter()
                    .map(|i| stage_one(switches[i]))
                    .collect::<Vec<Result<(usize, Cost, Cost), AggregateError>>>()
                    .into_iter()
                    .collect::<Result<_, _>>()?
            };
        let total = i128::from(self.total_rate).checked_add(total_delta).ok_or(
            AggregateError::Overflow {
                what: "the total rate",
            },
        )?;
        let total = u64::try_from(total).map_err(|_| AggregateError::OutOfRange {
            what: "the total rate",
        })?;
        for (i, ain, aout) in staged {
            self.a_in[i] = ain;
            self.a_out[i] = aout;
        }
        self.total_rate = total;
        Ok(())
    }

    /// `A_in[x]`: rate-weighted cost of all sources reaching ingress `x`.
    #[inline]
    pub fn a_in(&self, x: NodeId) -> Cost {
        self.a_in[x.index()]
    }

    /// `A_out[x]`: rate-weighted cost of egress `x` reaching all sinks.
    #[inline]
    pub fn a_out(&self, x: NodeId) -> Cost {
        self.a_out[x.index()]
    }

    /// Total traffic rate `Σλ` (the chain-term multiplier).
    #[inline]
    pub fn total_rate(&self) -> u64 {
        self.total_rate
    }

    /// The switches of the graph the aggregates were built over.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// Exact `C_a(p)` using the aggregates (equals
    /// [`ppdc_model::comm_cost`]).
    pub fn comm_cost<D: DistanceOracle + ?Sized>(&self, dm: &D, p: &Placement) -> Cost {
        self.comm_cost_switches(dm, p.switches())
    }

    /// [`AttachAggregates::comm_cost`] over a bare switch sequence, so the
    /// placement sweep can price candidate chains straight out of a reused
    /// scratch buffer. Exactly the same arithmetic — bit-identical costs.
    pub fn comm_cost_switches<D: DistanceOracle + ?Sized>(
        &self,
        dm: &D,
        switches: &[NodeId],
    ) -> Cost {
        use ppdc_topology::{sat_add, sat_mul};
        let ingress = switches[0];
        let egress = switches[switches.len() - 1];
        sat_add(
            sat_add(
                self.a_in(ingress),
                sat_mul(
                    self.total_rate,
                    ppdc_model::chain_cost_switches(dm, switches),
                ),
            ),
            self.a_out(egress),
        )
    }

    /// Exact equality of the `A` arrays and total rate (test helper for
    /// the bit-identity guarantees).
    pub fn same_as(&self, other: &AttachAggregates) -> bool {
        self.a_in == other.a_in
            && self.a_out == other.a_out
            && self.total_rate == other.total_rate
            && self.switches == other.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_model::{comm_cost, Sfc};
    use ppdc_topology::builders::{fat_tree, linear};
    use ppdc_topology::DistanceMatrix;

    #[test]
    fn aggregate_cost_matches_direct_eq1() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[5], 7);
        w.add_pair(hosts[3], hosts[11], 2);
        w.add_pair(hosts[8], hosts[8], 100);
        let agg = AttachAggregates::build(&g, &dm, &w);
        let sfc = Sfc::of_len(3).unwrap();
        let switches: Vec<NodeId> = g.switches().collect();
        for combo in [[0usize, 1, 2], [3, 7, 11], [19, 4, 0]] {
            let p = Placement::new(&g, &sfc, combo.iter().map(|&i| switches[i]).collect()).unwrap();
            assert_eq!(agg.comm_cost(&dm, &p), comm_cost(&dm, &w, &p));
        }
    }

    #[test]
    fn empty_workload_aggregates_are_zero() {
        let (g, ..) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let w = Workload::new();
        let agg = AttachAggregates::build(&g, &dm, &w);
        for &x in agg.switches() {
            assert_eq!(agg.a_in(x), 0);
            assert_eq!(agg.a_out(x), 0);
        }
        assert_eq!(agg.total_rate(), 0);
    }

    #[test]
    fn asymmetric_flows_give_asymmetric_aggregates() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 10); // all sources at h1, all sinks at h2
        let agg = AttachAggregates::build(&g, &dm, &w);
        let s: Vec<NodeId> = g.switches().collect();
        assert_eq!(agg.a_in(s[0]), 10);
        assert_eq!(agg.a_out(s[0]), 30);
        assert_eq!(agg.a_in(s[2]), 30);
        assert_eq!(agg.a_out(s[2]), 10);
    }

    #[test]
    fn switch_aggregated_build_is_bit_identical_to_flow_by_flow() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        // Heavy endpoint sharing: many flows per attach node, plus
        // self-loops and reversed pairs.
        for i in 0..hosts.len() {
            w.add_pair(
                hosts[i],
                hosts[(i * 7 + 3) % hosts.len()],
                1 + i as u64 * 13,
            );
            w.add_pair(hosts[(i * 5) % hosts.len()], hosts[i], 2 + i as u64);
        }
        let fast = AttachAggregates::build(&g, &dm, &w);
        let slow = AttachAggregates::build_flow_by_flow(&g, &dm, &w);
        assert!(fast.same_as(&slow));
    }

    #[test]
    fn zero_rate_flow_does_not_double_count_shared_host() {
        // Regression: a zero-rate flow leaves its hosts' masses at 0, so a
        // membership test based on mass==0 would re-push the host into
        // `touched` when a later nonzero flow shares it, double-counting
        // its mass in the switch sweep. Zero rates are real inputs (the
        // trace sampler's light class includes 0 and diurnal scaling can
        // floor rates to 0).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[5], 0); // zero-rate, touches hosts 0 and 5
        w.add_pair(hosts[0], hosts[7], 42); // shares src host 0
        w.add_pair(hosts[2], hosts[5], 9); // shares dst host 5
        let fast = AttachAggregates::build(&g, &dm, &w);
        let slow = AttachAggregates::build_flow_by_flow(&g, &dm, &w);
        assert!(fast.same_as(&slow));
    }

    #[test]
    fn unreachable_hosts_saturate_at_the_infinity_sentinel() {
        use ppdc_topology::{FaultSet, INFINITY};
        // Cut the middle switch of h1 - s0 - s1 - s2 - h2: h2 becomes
        // unreachable from s0, so any aggregate over s0 that includes h2
        // mass must read exactly INFINITY (never a wrapped product).
        let (g, h1, h2) = ppdc_topology::builders::linear(3).unwrap();
        let s: Vec<NodeId> = g.switches().collect();
        let mut f = FaultSet::new(&g);
        f.fail_node(s[1]).unwrap();
        let dm = DistanceMatrix::build(&g.degraded_view(&f));
        let mut w = Workload::new();
        w.add_pair(h1, h2, 10);
        let agg = AttachAggregates::build(&g, &dm, &w);
        assert_eq!(agg.a_in(s[0]), 10); // h1 still reaches s0
        assert_eq!(agg.a_out(s[0]), INFINITY); // h2 does not
        assert_eq!(agg.a_in(s[2]), INFINITY);
        assert_eq!(agg.a_out(s[2]), 10);
        // The oracle saturates identically.
        assert!(agg.same_as(&AttachAggregates::build_flow_by_flow(&g, &dm, &w)));
        // Zero mass contributes nothing even across the cut.
        let mut wz = Workload::new();
        wz.add_pair(h1, h2, 0);
        let aggz = AttachAggregates::build(&g, &dm, &wz);
        assert_eq!(aggz.a_out(s[0]), 0);
        assert_eq!(aggz.a_in(s[2]), 0);
    }

    #[test]
    fn restricted_build_matches_restricted_oracle() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..hosts.len() {
            w.add_pair(hosts[i], hosts[(i * 3 + 1) % hosts.len()], 5 + i as u64);
        }
        let all: Vec<NodeId> = g.switches().collect();
        let subset: Vec<NodeId> = all.iter().copied().step_by(3).collect();
        let fast = AttachAggregates::build_restricted(&g, &dm, &w, &subset);
        let slow = AttachAggregates::build_restricted_flow_by_flow(&g, &dm, &w, &subset);
        assert!(fast.same_as(&slow));
        assert_eq!(fast.switches(), &subset[..]);
        // Restricted entries agree with the full build on shared switches.
        let full = AttachAggregates::build(&g, &dm, &w);
        for &x in &subset {
            assert_eq!(fast.a_in(x), full.a_in(x));
            assert_eq!(fast.a_out(x), full.a_out(x));
        }
    }

    #[test]
    fn incremental_deltas_match_rebuild() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        let f0 = w.add_pair(hosts[0], hosts[5], 100);
        let f1 = w.add_pair(hosts[3], hosts[11], 40);
        let f2 = w.add_pair(hosts[8], hosts[0], 7);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        // Raise, lower, zero out.
        let deltas = [(f0, 50i64), (f1, -40), (f2, 3)];
        for &(f, d) in &deltas {
            w.set_rate(f, (w.rate(f) as i64 + d) as u64);
        }
        agg.apply_rate_deltas(&dm, &w, &deltas);
        let rebuilt = AttachAggregates::build(&g, &dm, &w);
        assert!(agg.same_as(&rebuilt));
    }

    #[test]
    fn cancelling_deltas_then_retouch_do_not_double_apply() {
        // Regression: three flows share a src host; the first two deltas
        // (+5, -5) cancel its accumulated out-delta to exactly 0, so a
        // delta==0 membership test would re-push the host on the third
        // delta and apply its delta twice to every switch.
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        let f0 = w.add_pair(hosts[0], hosts[5], 10);
        let f1 = w.add_pair(hosts[0], hosts[7], 10);
        let f2 = w.add_pair(hosts[0], hosts[9], 10);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        let deltas = [(f0, 5i64), (f1, -5), (f2, 2)];
        for &(f, d) in &deltas {
            w.set_rate(f, (w.rate(f) as i64 + d) as u64);
        }
        agg.apply_rate_deltas(&dm, &w, &deltas);
        let rebuilt = AttachAggregates::build(&g, &dm, &w);
        assert!(agg.same_as(&rebuilt));
    }

    #[test]
    #[should_panic(expected = "rate deltas drove")]
    fn inconsistent_negative_delta_panics_loudly() {
        // Overflow-hardening regression: before the i128 delta fold, a
        // delta below -λ wrapped the aggregate into a huge Cost that
        // silently poisoned every placement decision downstream. The
        // documented contract is now a loud panic in all build profiles.
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        let f = w.add_pair(h1, h2, 10);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        agg.apply_rate_deltas(&dm, &w, &[(f, -20)]);
    }

    #[test]
    fn overshooting_then_compensating_deltas_fold_exactly() {
        // Regression (fails on the old i64 fold): three flows share a src
        // host and a delta stream raises each by D before compensating
        // entries land *in the same batch*. The per-host running sum
        // transiently reaches 3·D > i64::MAX, which the old
        // `out_delta: Vec<i64>` accumulator trapped on (workspace
        // overflow-checks) even though the net change is tiny. The i128
        // fold only requires the *net* masses to be representable.
        const D: i64 = 3_500_000_000_000_000_000; // 3·D > i64::MAX
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        let f0 = w.add_pair(hosts[0], hosts[5], 10);
        let f1 = w.add_pair(hosts[0], hosts[7], 20);
        let f2 = w.add_pair(hosts[0], hosts[9], 30);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        let deltas = [(f0, D), (f1, D), (f2, D), (f0, -D), (f1, -D), (f2, -D + 3)];
        w.set_rate(f2, 33); // net: f0 and f1 unchanged, f2 +3
        agg.try_apply_rate_deltas(&dm, &w, &deltas)
            .expect("overshooting-but-compensated deltas must fold");
        let rebuilt = AttachAggregates::build(&g, &dm, &w);
        assert!(agg.same_as(&rebuilt));
    }

    #[test]
    fn failed_delta_fold_leaves_aggregates_untouched() {
        // The staged commit: an inconsistent batch must error without
        // half-updating any switch (a partially applied A_in/A_out would
        // silently skew every later incremental epoch).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        let f0 = w.add_pair(hosts[0], hosts[5], 10);
        let f1 = w.add_pair(hosts[3], hosts[11], 40);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        let before = agg.clone();
        let err = agg
            .try_apply_rate_deltas(&dm, &w, &[(f0, 1), (f1, -500)])
            .expect_err("delta below -λ must be rejected");
        assert_eq!(err, AggregateError::OutOfRange { what: "A_in" });
        assert!(agg.same_as(&before));
        assert_eq!(agg.total_rate(), before.total_rate());
    }

    #[test]
    fn mass_delta_fold_matches_flow_delta_fold() {
        // `try_apply_mass_deltas` is the streaming tree-reduce target: a
        // pre-grouped per-host mass list must land bit-identically to the
        // per-flow path (and to a from-scratch rebuild).
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        let f0 = w.add_pair(hosts[0], hosts[5], 100);
        let f1 = w.add_pair(hosts[3], hosts[11], 40);
        let f2 = w.add_pair(hosts[8], hosts[0], 7);
        let mut by_flow = AttachAggregates::build(&g, &dm, &w);
        let mut by_mass = by_flow.clone();
        let deltas = [(f0, 50i64), (f1, -40), (f2, 3)];
        for &(f, d) in &deltas {
            let new = u64::try_from(i64::try_from(w.rate(f)).unwrap() + d).unwrap();
            w.set_rate(f, new);
        }
        by_flow.try_apply_rate_deltas(&dm, &w, &deltas).unwrap();
        // Grouped by endpoint host, first-touch order of the flow path.
        let masses = [
            HostMassDelta {
                host: hosts[0],
                d_out: 50,
                d_in: 3,
            },
            HostMassDelta {
                host: hosts[5],
                d_out: 0,
                d_in: 50,
            },
            HostMassDelta {
                host: hosts[3],
                d_out: -40,
                d_in: 0,
            },
            HostMassDelta {
                host: hosts[11],
                d_out: 0,
                d_in: -40,
            },
            HostMassDelta {
                host: hosts[8],
                d_out: 3,
                d_in: 0,
            },
        ];
        by_mass.try_apply_mass_deltas(&dm, &masses, 13).unwrap();
        assert!(by_mass.same_as(&by_flow));
        assert!(by_mass.same_as(&AttachAggregates::build(&g, &dm, &w)));
    }

    #[test]
    fn empty_and_zero_deltas_are_no_ops() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        let f = w.add_pair(h1, h2, 10);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        let before = agg.clone();
        agg.apply_rate_deltas(&dm, &w, &[]);
        agg.apply_rate_deltas(&dm, &w, &[(f, 0)]);
        assert!(agg.same_as(&before));
    }
}
