//! Attach-cost aggregates: the workload-wide ingress/egress cost arrays.
//!
//! `C_a(p)` (Eq. 1) decomposes into a chain term shared by all flows and a
//! per-flow attachment term that depends only on the ingress and egress
//! switches:
//!
//! `C_a(p) = Σλ · chain(p)  +  A_in[p(1)]  +  A_out[p(n)]`
//!
//! where `A_in[x] = Σ_i λ_i·c(s(v_i), x)` and
//! `A_out[x] = Σ_i λ_i·c(x, s(v'_i))`. Precomputing the two arrays makes
//! evaluating a candidate placement `O(n)` regardless of the number of
//! flows — the enabling trick for Algorithm 3's `O(|V_s|²)` pair sweep and
//! the branch-and-bound of Algorithm 4.

use ppdc_model::{Placement, Workload};
use ppdc_topology::{Cost, DistanceMatrix, Graph, NodeId};

/// Precomputed `A_in` / `A_out` arrays plus the total rate.
#[derive(Debug, Clone)]
pub struct AttachAggregates {
    a_in: Vec<Cost>,
    a_out: Vec<Cost>,
    total_rate: u64,
    switches: Vec<NodeId>,
}

impl AttachAggregates {
    /// Builds the aggregates for `w` over all switches of `g`.
    pub fn build(g: &Graph, dm: &DistanceMatrix, w: &Workload) -> Self {
        let n = g.num_nodes();
        let mut a_in = vec![0; n];
        let mut a_out = vec![0; n];
        for x in g.switches() {
            let (mut ain, mut aout) = (0, 0);
            for (_, src, dst, rate) in w.iter() {
                ain += rate * dm.cost(src, x);
                aout += rate * dm.cost(x, dst);
            }
            a_in[x.index()] = ain;
            a_out[x.index()] = aout;
        }
        AttachAggregates {
            a_in,
            a_out,
            total_rate: w.total_rate(),
            switches: g.switches().collect(),
        }
    }

    /// `A_in[x]`: rate-weighted cost of all sources reaching ingress `x`.
    #[inline]
    pub fn a_in(&self, x: NodeId) -> Cost {
        self.a_in[x.index()]
    }

    /// `A_out[x]`: rate-weighted cost of egress `x` reaching all sinks.
    #[inline]
    pub fn a_out(&self, x: NodeId) -> Cost {
        self.a_out[x.index()]
    }

    /// Total traffic rate `Σλ` (the chain-term multiplier).
    #[inline]
    pub fn total_rate(&self) -> u64 {
        self.total_rate
    }

    /// The switches of the graph the aggregates were built over.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// Exact `C_a(p)` using the aggregates (equals
    /// [`ppdc_model::comm_cost`]).
    pub fn comm_cost(&self, dm: &DistanceMatrix, p: &Placement) -> Cost {
        self.a_in(p.ingress())
            + self.total_rate * ppdc_model::chain_cost(dm, p)
            + self.a_out(p.egress())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_model::{comm_cost, Sfc};
    use ppdc_topology::builders::{fat_tree, linear};

    #[test]
    fn aggregate_cost_matches_direct_eq1() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[5], 7);
        w.add_pair(hosts[3], hosts[11], 2);
        w.add_pair(hosts[8], hosts[8], 100);
        let agg = AttachAggregates::build(&g, &dm, &w);
        let sfc = Sfc::of_len(3).unwrap();
        let switches: Vec<NodeId> = g.switches().collect();
        for combo in [[0usize, 1, 2], [3, 7, 11], [19, 4, 0]] {
            let p = Placement::new(
                &g,
                &sfc,
                combo.iter().map(|&i| switches[i]).collect(),
            )
            .unwrap();
            assert_eq!(agg.comm_cost(&dm, &p), comm_cost(&dm, &w, &p));
        }
    }

    #[test]
    fn empty_workload_aggregates_are_zero() {
        let (g, ..) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let w = Workload::new();
        let agg = AttachAggregates::build(&g, &dm, &w);
        for &x in agg.switches() {
            assert_eq!(agg.a_in(x), 0);
            assert_eq!(agg.a_out(x), 0);
        }
        assert_eq!(agg.total_rate(), 0);
    }

    #[test]
    fn asymmetric_flows_give_asymmetric_aggregates() {
        let (g, h1, h2) = linear(3).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 10); // all sources at h1, all sinks at h2
        let agg = AttachAggregates::build(&g, &dm, &w);
        let s: Vec<NodeId> = g.switches().collect();
        assert_eq!(agg.a_in(s[0]), 10);
        assert_eq!(agg.a_out(s[0]), 30);
        assert_eq!(agg.a_in(s[2]), 30);
        assert_eq!(agg.a_out(s[2]), 10);
    }
}
