//! **Traffic-scaling VNFs** — the paper's future-work item 4, implemented.
//!
//! Real VNFs change the volume of the traffic they forward: a firewall
//! filters malicious flows (σ < 1), a WAN optimizer compresses (σ < 1), a
//! decryption gateway can expand (σ > 1). With per-VNF scale factors
//! `σ₁ … σ_n`, a flow of rate λ enters the chain at λ, leaves `f_j` at
//! `λ·σ₁…σ_j`, and Eq. 1 generalizes to *per-segment* rates:
//!
//! `C(p) = λ·c(s, p₁) + Σ_j λ·Π_{k≤j}σ_k · c(p_j, p_{j+1})
//!        + λ·Π_all σ · c(p_n, t)`
//!
//! Filtering front-loads the traffic, so the optimal chain hugs the
//! *sources* harder the stronger the filtering — the effect the
//! [`optimal_placement_scaled`] solver and its tests demonstrate.
//!
//! Factors are exact permille integers to keep the whole cost algebra in
//! integer arithmetic: all segment rates are computed as
//! `λ·σ₁…σ_j / 1000^j` with u128 intermediates.

use crate::aggregates::AttachAggregates;
use crate::PlacementError;
use ppdc_model::{ModelError, Placement, Sfc, Workload};
use ppdc_stroll::StrollError;
use ppdc_topology::{Cost, DistanceMatrix, Graph, MetricClosure, NodeId, INFINITY};

/// Per-VNF traffic scale factors in permille (1000 = pass-through).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficScaling {
    permille: Vec<u32>,
}

impl TrafficScaling {
    /// Builds scaling for an SFC; one permille factor per VNF.
    ///
    /// # Errors
    ///
    /// The factor list must match the SFC length.
    pub fn new(sfc: &Sfc, permille: Vec<u32>) -> Result<Self, ModelError> {
        if permille.len() != sfc.len() {
            return Err(ModelError::WrongLength {
                expected: sfc.len(),
                got: permille.len(),
            });
        }
        Ok(TrafficScaling { permille })
    }

    /// Pass-through scaling (σ = 1 everywhere) — degenerates to Eq. 1.
    pub fn identity(sfc: &Sfc) -> Self {
        TrafficScaling {
            permille: vec![1000; sfc.len()],
        }
    }

    /// Uniform scaling: every VNF forwards `permille`/1000 of its input.
    pub fn uniform(sfc: &Sfc, permille: u32) -> Self {
        TrafficScaling {
            permille: vec![permille; sfc.len()],
        }
    }

    /// The factor of VNF `j`, in permille.
    pub fn factor(&self, j: usize) -> u32 {
        self.permille[j]
    }

    /// Number of VNFs covered.
    pub fn len(&self) -> usize {
        self.permille.len()
    }

    /// True when no VNFs are covered.
    pub fn is_empty(&self) -> bool {
        self.permille.is_empty()
    }
}

/// The rate multipliers per chain position for a unit input rate, scaled
/// by 2¹⁶ for integer precision: entry `j` is the relative rate *after*
/// `f_{j+1}` (entry `n` past the egress). Entry `−1` (the ingress leg) is
/// always `1 << 16`.
pub fn scaled_segment_rates(scaling: &TrafficScaling) -> Vec<u64> {
    const ONE: u128 = 1 << 16;
    let mut out = Vec::with_capacity(scaling.len() + 1);
    let mut acc: u128 = ONE;
    for j in 0..scaling.len() {
        acc = acc * u128::from(scaling.factor(j)) / 1000;
        // Pathological expansion chains could exceed u64; saturate rather
        // than truncate.
        out.push(u64::try_from(acc).unwrap_or(u64::MAX));
    }
    out
}

/// Exact scaled communication cost of a placement (the generalized Eq. 1).
pub fn comm_cost_scaled(
    dm: &DistanceMatrix,
    w: &Workload,
    p: &Placement,
    scaling: &TrafficScaling,
) -> Cost {
    assert_eq!(p.len(), scaling.len(), "one factor per VNF");
    let seg = scaled_segment_rates(scaling);
    let mut total: u128 = 0;
    for (_, src, dst, rate) in w.iter() {
        let rate = u128::from(rate);
        let mut cost: u128 = (rate * u128::from(dm.cost(src, p.ingress()))) << 16;
        for (j, &s) in seg.iter().enumerate().take(p.len() - 1) {
            cost += rate * u128::from(s) * u128::from(dm.cost(p.switch(j), p.switch(j + 1)));
        }
        cost += rate * u128::from(seg[p.len() - 1]) * u128::from(dm.cost(p.egress(), dst));
        total += cost;
    }
    Cost::try_from(total >> 16).unwrap_or(INFINITY)
}

/// Exact branch-and-bound placement under traffic scaling.
///
/// The chain term is no longer a single multiplier, so Algorithm 3's
/// shared-stroll trick does not apply; instead the Algorithm-4 search is
/// generalized with per-depth segment rates (the bound stays admissible:
/// remaining segments are charged the *smallest* remaining segment rate
/// times the cheapest closure edge).
///
/// # Errors
///
/// Standard placement errors plus budget exhaustion.
pub fn optimal_placement_scaled(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    scaling: &TrafficScaling,
    budget: u64,
) -> Result<(Placement, Cost), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let switches: Vec<NodeId> = g.switches().collect();
    let n = sfc.len();
    if switches.len() < n {
        return Err(PlacementError::Model(ModelError::TooFewSwitches {
            switches: switches.len(),
            vnfs: n,
        }));
    }
    let closure = MetricClosure::over(dm, &switches);
    let agg = AttachAggregates::build(g, dm, w);
    let total_rate = agg.total_rate();
    let seg = scaled_segment_rates(scaling);
    // Fixed-point («16) per-segment aggregate rates.
    let seg_rate: Vec<u128> = seg
        .iter()
        .map(|&s| u128::from(total_rate) * u128::from(s))
        .collect();
    let m = closure.len();
    let mut min_edge = INFINITY;
    for i in 0..m {
        for j in 0..m {
            if i != j {
                min_edge = min_edge.min(closure.cost_ix(i, j));
            }
        }
    }
    if m < 2 {
        min_edge = 0;
    }
    let mut sorted_from: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (u, slot) in sorted_from.iter_mut().enumerate() {
        let mut list: Vec<usize> = (0..m).filter(|&x| x != u).collect();
        list.sort_by_key(|&x| (closure.cost_ix(u, x), x));
        *slot = list;
    }
    // Suffix bound: cheapest possible remaining chain = min segment rate
    // from position j onward times the min edge, per remaining hop.
    let mut min_seg_suffix: Vec<u128> = vec![u128::MAX; n + 1];
    min_seg_suffix[n] = 0;
    for j in (0..n).rev() {
        min_seg_suffix[j] = min_seg_suffix[j + 1].min(seg_rate[j]);
    }

    struct S<'a> {
        agg: &'a AttachAggregates,
        closure: &'a MetricClosure,
        seg_rate: &'a [u128],
        egress_seg: u128,
        min_edge: Cost,
        min_seg_suffix: &'a [u128],
        sorted_from: &'a [Vec<usize>],
        n: usize,
        used: Vec<bool>,
        seq: Vec<usize>,
        best: u128,
        best_seq: Vec<usize>,
        expansions: u64,
        budget: u64,
    }
    impl S<'_> {
        fn a_out_scaled(&self, x: usize) -> u128 {
            // A_out is rate-weighted by the *input* rate; rescale by the
            // egress segment factor (uniform across flows).
            u128::from(self.agg.a_out(self.closure.node(x))) * self.egress_seg
                / u128::from(self.agg.total_rate()).max(1)
        }
        fn dfs(&mut self, depth: usize, cost: u128) -> Result<(), StrollError> {
            self.expansions += 1;
            if self.expansions > self.budget {
                return Err(StrollError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            if depth == self.n {
                // Callers reject n == 0, so the sequence is non-empty at a
                // leaf; an empty one would mean a broken search invariant —
                // skip the leaf rather than panic.
                let Some(&last) = self.seq.last() else {
                    return Ok(());
                };
                let total = cost + self.a_out_scaled(last);
                if total < self.best {
                    self.best = total;
                    self.best_seq = self.seq.clone();
                }
                return Ok(());
            }
            // Admissible bound on remaining chain hops.
            let lb = cost
                + self.min_seg_suffix[depth]
                    * u128::from(self.min_edge)
                    * (self.n - depth).saturating_sub(1) as u128; // analyzer:allow(lossy-cast) -- usize → u128 is lossless on every supported target
            if lb >= self.best {
                return Ok(());
            }
            // `seq` is empty exactly at depth 0 (the ingress choice).
            let (order, prev): (Vec<usize>, Option<usize>) = match self.seq.last() {
                None => ((0..self.closure.len()).collect(), None),
                Some(&last) => (self.sorted_from[last].clone(), Some(last)),
            };
            for x in order {
                if self.used[x] {
                    continue;
                }
                let step = match prev {
                    None => u128::from(self.agg.a_in(self.closure.node(x))) << 16,
                    Some(last) => {
                        self.seg_rate[depth - 1] * u128::from(self.closure.cost_ix(last, x))
                    }
                };
                self.used[x] = true;
                self.seq.push(x);
                self.dfs(depth + 1, cost + step)?;
                self.seq.pop();
                self.used[x] = false;
            }
            Ok(())
        }
    }
    let mut s = S {
        agg: &agg,
        closure: &closure,
        seg_rate: &seg_rate,
        egress_seg: u128::from(seg[n - 1]) * u128::from(total_rate),
        min_edge,
        min_seg_suffix: &min_seg_suffix,
        sorted_from: &sorted_from,
        n,
        used: vec![false; m],
        seq: Vec::with_capacity(n),
        best: u128::MAX,
        best_seq: Vec::new(),
        expansions: 0,
        budget,
    };
    s.dfs(0, 0)?;
    let p = Placement::new_unchecked(s.best_seq.iter().map(|&i| closure.node(i)).collect());
    let cost = comm_cost_scaled(dm, w, &p, scaling);
    Ok((p, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal_placement;
    use ppdc_model::comm_cost;
    use ppdc_topology::builders::{fat_tree, linear};

    #[test]
    fn identity_scaling_matches_eq1() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 37);
        w.add_pair(h2, h1, 11);
        let sfc = Sfc::of_len(3).unwrap();
        let id = TrafficScaling::identity(&sfc);
        let s: Vec<NodeId> = g.switches().collect();
        let p = Placement::new(&g, &sfc, vec![s[1], s[2], s[3]]).unwrap();
        assert_eq!(comm_cost_scaled(&dm, &w, &p, &id), comm_cost(&dm, &w, &p));
        // And the scaled optimizer agrees with the plain one.
        let (_, c1) = optimal_placement_scaled(&g, &dm, &w, &sfc, &id, u64::MAX).unwrap();
        let (_, c2) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn half_rate_halves_downstream_segments() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 100);
        let sfc = Sfc::of_len(2).unwrap();
        let half = TrafficScaling::uniform(&sfc, 500);
        let s: Vec<NodeId> = g.switches().collect();
        let p = Placement::new(&g, &sfc, vec![s[0], s[1]]).unwrap();
        // Legs: 1 hop at 100, chain 1 hop at 50, egress 4 hops at 25.
        assert_eq!(comm_cost_scaled(&dm, &w, &p, &half), 100 + 50 + 100);
    }

    #[test]
    fn strong_filtering_pulls_chain_toward_sources() {
        // A single heavy one-way flow across the fabric. With pass-through
        // VNFs the chain sits anywhere on the route; with 90 % filtering
        // the optimum hugs the source rack so the bulky unfiltered leg is
        // as short as possible.
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let (src, dst) = (hosts[0], hosts[15]);
        let mut w = Workload::new();
        w.add_pair(src, dst, 1000);
        let sfc = Sfc::of_len(3).unwrap();
        let filter = TrafficScaling::uniform(&sfc, 100); // keep 10 % per VNF
        let (p, cost) = optimal_placement_scaled(&g, &dm, &w, &sfc, &filter, u64::MAX).unwrap();
        // Ingress adjacent to the source host.
        assert_eq!(dm.cost(src, p.ingress()), 1, "ingress at the source ToR");
        // And the scaled cost is far below the pass-through optimum.
        let (_, plain) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
        assert!(cost < plain / 2, "filtering saves: {cost} vs {plain}");
    }

    #[test]
    fn expansion_scaling_pushes_chain_toward_destinations() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let (src, dst) = (hosts[0], hosts[15]);
        let mut w = Workload::new();
        w.add_pair(src, dst, 1000);
        let sfc = Sfc::of_len(3).unwrap();
        let expand = TrafficScaling::uniform(&sfc, 3000); // 3× per VNF
        let (p, _) = optimal_placement_scaled(&g, &dm, &w, &sfc, &expand, u64::MAX).unwrap();
        assert_eq!(dm.cost(p.egress(), dst), 1, "egress at the destination ToR");
    }

    #[test]
    fn segment_rates_are_exact_products() {
        let sfc = Sfc::of_len(3).unwrap();
        let sc = TrafficScaling::new(&sfc, vec![500, 2000, 1000]).unwrap();
        let seg = scaled_segment_rates(&sc);
        let one = 1u64 << 16;
        assert_eq!(seg, vec![one / 2, one, one]);
        assert!(TrafficScaling::new(&sfc, vec![1000]).is_err());
    }
}
