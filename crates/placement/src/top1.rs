//! TOP-1 — the single-flow placement problem of Fig. 7, solved through the
//! n-stroll reduction of Theorem 1.
//!
//! Each entry point builds the induced closure
//! `G' = {s(v₁), s(v'₁)} ∪ V_s`, runs one of the three stroll solvers, and
//! converts the stroll into a placement (VNFs on the first `n` distinct
//! switches). The reported `comm_cost` is the exact Eq. 1 cost of that
//! placement — by the triangle inequality it is never more than the stroll
//! cost, and the two coincide when the stroll is a simple waypoint path.

use crate::PlacementError;
use ppdc_model::{comm_cost_flow, ModelError, Placement};
use ppdc_stroll::{
    dp_stroll, optimal_stroll_with_budget, primal_dual_stroll, PrimalDualConfig, StrollInstance,
    StrollSolution,
};
use ppdc_topology::{Cost, DistanceMatrix, Graph, MetricClosure, NodeId};

/// Result of a TOP-1 solve.
#[derive(Debug, Clone)]
pub struct Top1Solution {
    /// The VNF placement induced by the stroll.
    pub placement: Placement,
    /// Exact Eq. 1 communication cost of the placement for this flow.
    pub comm_cost: Cost,
    /// The raw stroll cost found by the solver (≥ `comm_cost`).
    pub stroll_cost: Cost,
}

fn build_closure(g: &Graph, src: NodeId, dst: NodeId, dm: &DistanceMatrix) -> MetricClosure {
    let mut members: Vec<NodeId> = vec![src];
    if dst != src {
        members.push(dst);
    }
    members.extend(g.switches());
    MetricClosure::over(dm, &members)
}

fn to_solution(
    dm: &DistanceMatrix,
    src: NodeId,
    dst: NodeId,
    rate: u64,
    n: usize,
    sol: StrollSolution,
) -> Result<Top1Solution, PlacementError> {
    if sol.distinct.len() < n {
        return Err(PlacementError::Model(ModelError::TooFewSwitches {
            switches: sol.distinct.len(),
            vnfs: n,
        }));
    }
    let placement = Placement::new_unchecked(sol.first_n(n).to_vec());
    let comm = comm_cost_flow(dm, src, dst, rate, &placement);
    Ok(Top1Solution {
        placement,
        comm_cost: comm,
        stroll_cost: rate * sol.cost,
    })
}

/// TOP-1 via **DP-Stroll** (Algorithm 2).
pub fn top1_dp(
    g: &Graph,
    dm: &DistanceMatrix,
    src: NodeId,
    dst: NodeId,
    rate: u64,
    n: usize,
) -> Result<Top1Solution, PlacementError> {
    let closure = build_closure(g, src, dst, dm);
    let inst = StrollInstance::new(&closure, src, dst, n)?;
    let sol = dp_stroll(&inst)?;
    to_solution(dm, src, dst, rate, n, sol)
}

/// TOP-1 via the exact branch-and-bound (**Optimal**).
pub fn top1_optimal(
    g: &Graph,
    dm: &DistanceMatrix,
    src: NodeId,
    dst: NodeId,
    rate: u64,
    n: usize,
    budget: u64,
) -> Result<Top1Solution, PlacementError> {
    let closure = build_closure(g, src, dst, dm);
    let inst = StrollInstance::new(&closure, src, dst, n)?;
    let sol = optimal_stroll_with_budget(&inst, budget)?;
    to_solution(dm, src, dst, rate, n, sol)
}

/// TOP-1 via the Goemans–Williamson **PrimalDual** (Algorithm 1).
pub fn top1_primal_dual(
    g: &Graph,
    dm: &DistanceMatrix,
    src: NodeId,
    dst: NodeId,
    rate: u64,
    n: usize,
) -> Result<Top1Solution, PlacementError> {
    let closure = build_closure(g, src, dst, dm);
    let inst = StrollInstance::new(&closure, src, dst, n)?;
    let sol = primal_dual_stroll(g, &inst, PrimalDualConfig::default())?;
    to_solution(dm, src, dst, rate, n, sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdc_topology::builders::{fat_tree, linear};

    #[test]
    fn theorem1_dp_equals_placement_cost_on_line() {
        // On the linear PPDC the optimal stroll is a simple path, so the
        // stroll cost equals the induced placement cost exactly.
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        for n in 1..=5 {
            let sol = top1_dp(&g, &dm, h1, h2, 10, n).unwrap();
            assert_eq!(sol.comm_cost, sol.stroll_cost, "n={n}");
            assert_eq!(sol.comm_cost, 60, "line distance is 6 hops × rate 10");
            assert_eq!(sol.placement.len(), n);
        }
    }

    #[test]
    fn dp_between_optimal_and_twice_optimal() {
        // Fig. 7's claim: DP-Stroll sits between Optimal and the 2+ε
        // PrimalDual guarantee.
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        for n in 1..=6 {
            let opt = top1_optimal(&g, &dm, hosts[0], hosts[9], 1, n, u64::MAX).unwrap();
            let dp = top1_dp(&g, &dm, hosts[0], hosts[9], 1, n).unwrap();
            assert!(opt.comm_cost <= dp.comm_cost, "n={n}");
            assert!(
                dp.comm_cost <= 2 * opt.comm_cost,
                "n={n}: dp {} vs 2×opt {}",
                dp.comm_cost,
                2 * opt.comm_cost
            );
        }
    }

    #[test]
    fn primal_dual_valid_and_bounded() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        for n in 1..=5 {
            let opt = top1_optimal(&g, &dm, hosts[2], hosts[12], 1, n, u64::MAX).unwrap();
            let pd = top1_primal_dual(&g, &dm, hosts[2], hosts[12], 1, n).unwrap();
            assert!(pd.comm_cost >= opt.comm_cost);
            assert!(
                pd.comm_cost <= 2 * opt.comm_cost + 2,
                "n={n}: pd {} opt {}",
                pd.comm_cost,
                opt.comm_cost
            );
        }
    }

    #[test]
    fn same_host_pair_is_a_tour() {
        let (g, h1, _) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let sol = top1_dp(&g, &dm, h1, h1, 100, 2).unwrap();
        // Out to s1, s2 and back: (1 + 1) out, 2 back = 4 hops × 100.
        assert_eq!(sol.comm_cost, 400);
    }

    #[test]
    fn rate_scales_cost_linearly() {
        let (g, h1, h2) = linear(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let a = top1_dp(&g, &dm, h1, h2, 1, 2).unwrap();
        let b = top1_dp(&g, &dm, h1, h2, 17, 2).unwrap();
        assert_eq!(b.comm_cost, 17 * a.comm_cost);
    }
}
