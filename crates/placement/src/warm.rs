//! **Warm-started re-solver** — incumbent seeding and delta-scoped bound
//! caching for the streaming epoch loop.
//!
//! Consecutive epochs solve near-identical instances: the PR 9 ingestion
//! phase reports exactly which hosts' rate masses moved
//! ([`HostMassDelta`]), and the previous epoch's placement is usually
//! still optimal or close to it. [`dp_placement_warm`] exploits both:
//!
//! 1. **Incumbent seeding** — the incumbent placement is priced under the
//!    *new* aggregates and installed as the sweep's initial atomic upper
//!    bound. A near-stationary epoch then prunes almost every egress at
//!    its first bound comparison instead of discovering the same optimum
//!    from scratch.
//! 2. **Delta-scoped bound caching** — a persistent [`BoundCache`] holds
//!    the per-candidate `A_in`/`A_out` bound terms, the metric closure,
//!    its commutative row fingerprints, the interchangeability classes,
//!    and the best-bound egress order. Epochs report their merged mass
//!    deltas via [`BoundCache::note_mass_deltas`]; at the next solve only
//!    rows whose aggregates actually moved recompute (a cancelling delta
//!    pair leaves its rows clean), classes are re-verified only when some
//!    row is dirty, and a quiet epoch reuses everything verbatim.
//! 3. **Dirty-row egress sweep** — with a seeded incumbent, cached order
//!    entries whose bound already exceeds the seed are dropped before the
//!    parallel sweep even spawns them.
//! 4. **Interior-chain memoization** — the stroll DP filling a chain's
//!    interior is a function of the metric closure alone (fixed while
//!    the cache is valid); the aggregates only price the finished chain.
//!    Every solved `(ingress, egress)` interior is therefore memoized
//!    (`InteriorMemo` in `dp.rs`) and later epochs price it under the
//!    new aggregates in `O(n)` instead of re-running the per-egress DP
//!    fill. This carries the bulk of the speedup: an admissible bound
//!    can never prune the `{lb ≤ optimum}` survivor set, but memoization
//!    makes every survivor nearly free after its first solve.
//!
//! # Bit-identity
//!
//! The warm solve returns the same cost **and** the same lexicographic
//! switch tie-break as the cold solve (DESIGN.md §10, proptested against
//! [`crate::dp_placement_exhaustive_with_agg`]). The argument in brief:
//! the seed is the exact cost of a feasible placement, so it is an upper
//! bound on nothing below the optimum; strict-inequality pruning then
//! never drops a candidate of optimal cost, and the per-egress local
//! minima — which decide the tie-break — are taken over the same solved
//! sets in both paths. The incumbent's own switch vector is *never*
//! injected into the candidate set: it only tightens the bound, so the
//! winning chain is always discovered by the sweep itself.
//!
//! # Cache contract
//!
//! A [`BoundCache`] is keyed by the candidate switch set and chain length
//! (shape changes trigger a transparent full rebuild) but **trusts** the
//! caller on two points: the distance oracle must not change between
//! solves without an [`BoundCache::invalidate`] call, and every aggregate
//! mutation between solves must be reported through
//! [`BoundCache::note_mass_deltas`]. The streaming engine satisfies both
//! by construction — its oracle is fixed for the day and every mutation
//! flows through the ingest report. On checkpoint restore the engine
//! starts from a fresh cache (rebuilt, never persisted), which keeps
//! `ppdc-stream-ckpt/v1` primary-state-only and kill/resume bit-identical.

use crate::aggregates::{AttachAggregates, HostMassDelta};
use crate::dp::{
    class_sizes, closure_c_min, closure_row_hashes, dp_placement_inner, egress_order,
    sweep_classes_with_hashes, too_few, InteriorMemo, SweepCtx, ORBIT_MIN_SWITCHES,
};
use crate::PlacementError;
use ppdc_model::{Placement, Sfc, Workload};
use ppdc_obs::names as obs_names;
use ppdc_topology::{sat_mul, Cost, DistanceOracle, Graph, MetricClosure, NodeId};
use std::sync::atomic::AtomicU64;

/// Persistent bound state reused across warm solves; see the module docs
/// for what it caches and the contract it imposes on callers.
///
/// All fields are derived state: dropping the cache (or calling
/// [`BoundCache::invalidate`]) costs one full rebuild on the next solve
/// and nothing else, which is exactly the checkpoint-restore story.
#[derive(Debug, Default)]
pub struct BoundCache {
    valid: bool,
    /// Set by [`BoundCache::note_mass_deltas`]; cleared by each solve.
    touched: bool,
    /// Chain length the cached `seg_lb`/order were computed for.
    n: usize,
    /// Candidate switch set the closure covers, in aggregate order.
    switches: Vec<NodeId>,
    closure: MetricClosure,
    /// [`closure_row_hashes`] of `closure`; empty below the orbit cutoff.
    row_hash: Vec<u64>,
    c_min: Cost,
    /// Total rate the cached order was computed under.
    rate: u64,
    a_in: Vec<Cost>,
    a_out: Vec<Cost>,
    classes: Vec<Vec<usize>>,
    class_size: Vec<u32>,
    /// Sorted best-bound egress order ([`egress_order`]).
    order: Vec<(Cost, usize)>,
    /// Cross-epoch interior-chain memo: the stroll DP's answers depend
    /// only on the closure (never the aggregates), so they persist
    /// across epochs and are priced under each epoch's aggregates in
    /// `O(n)` instead of re-running the `O(m²)`-per-level DP fill. Reset
    /// whenever the closure rebuilds.
    interior: InteriorMemo,
}

impl BoundCache {
    /// An empty cache; the first solve performs a full rebuild.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once the cache holds a usable bound state (i.e. at least one
    /// warm solve has run since construction/invalidation).
    pub fn is_warm(&self) -> bool {
        self.valid
    }

    /// Drops all cached state. Must be called when the distance oracle's
    /// answers change (fault events, topology edits); candidate-set and
    /// chain-length changes are detected automatically and do not need it.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.touched = false;
    }

    /// Records that the aggregates absorbed `masses` since the last solve.
    /// Call once per ingested batch, *after* folding the deltas into the
    /// aggregates; which hosts moved is irrelevant here — the next solve
    /// diffs the per-switch terms exactly — only whether anything did.
    pub fn note_mass_deltas(&mut self, masses: &[HostMassDelta]) {
        self.touched |= !masses.is_empty();
    }

    /// `(n−1) · c_min` for the cached shape.
    fn seg_lb(&self) -> Cost {
        let interior = u64::try_from(self.n.saturating_sub(1)).unwrap_or(u64::MAX);
        sat_mul(interior, self.c_min)
    }

    /// Brings the cache in sync with `agg` for an `n`-VNF solve,
    /// recomputing as little as the reported deltas allow.
    fn refresh<D: DistanceOracle + ?Sized>(&mut self, dm: &D, agg: &AttachAggregates, n: usize) {
        let obs = ppdc_obs::global();
        if !self.valid || self.n != n || self.switches != agg.switches() {
            self.rebuild(dm, agg, n);
            let m = u64::try_from(self.closure.len()).unwrap_or(u64::MAX);
            obs.add(obs_names::SOLVER_WARM_ROWS_DIRTY, m);
            return;
        }
        #[cfg(feature = "strict-invariants")]
        {
            // The cache trusts the caller to invalidate on distance
            // changes; under strict invariants, verify the trust.
            let fresh = MetricClosure::over(dm, agg.switches());
            let m = self.closure.len();
            assert!(
                (0..m).all(|i| (0..m).all(|j| fresh.cost_ix(i, j) == self.closure.cost_ix(i, j))),
                "BoundCache used across a distance change without invalidate()"
            );
        }
        let m = self.closure.len();
        let m64 = u64::try_from(m).unwrap_or(u64::MAX);
        let rate = agg.total_rate();
        if !self.touched && rate == self.rate {
            // Nothing was reported since the last solve: unchanged
            // aggregates + unchanged closure rows imply unchanged bounds,
            // so every row — and the order built from them — is reused
            // verbatim (DESIGN.md §10).
            debug_assert!(
                (0..m).all(|i| {
                    let x = self.closure.node(i);
                    agg.a_in(x) == self.a_in[i] && agg.a_out(x) == self.a_out[i]
                }),
                "aggregates moved without BoundCache::note_mass_deltas"
            );
            obs.add(obs_names::SOLVER_WARM_ROWS_REUSED, m64);
            return;
        }
        // Row-wise invalidation: diff the per-switch terms against the
        // snapshot. O(m) oracle-free scans — the attach aggregates have
        // already absorbed the deltas — so even a full-fabric churn pays
        // closure-free refresh here.
        let mut dirty = 0u64;
        for i in 0..m {
            let x = self.closure.node(i);
            let (ai, ao) = (agg.a_in(x), agg.a_out(x));
            if ai != self.a_in[i] || ao != self.a_out[i] {
                self.a_in[i] = ai;
                self.a_out[i] = ao;
                dirty += 1;
            }
        }
        obs.add(obs_names::SOLVER_WARM_ROWS_DIRTY, dirty);
        obs.add(
            obs_names::SOLVER_WARM_ROWS_REUSED,
            m64.saturating_sub(dirty),
        );
        let rate_changed = rate != self.rate;
        self.rate = rate;
        self.touched = false;
        if dirty == 0 && !rate_changed {
            // The reported deltas cancelled exactly (or touched only
            // non-candidate masses): all rows clean, order reused.
            return;
        }
        if dirty > 0 {
            // Interchangeability depends on the (a_in, a_out) pairs, so
            // dirty rows force a reclassification — against the cached
            // row fingerprints, which depend only on the closure. The
            // canonical class order makes the result identical to a
            // cold classification of the same aggregates.
            self.classes =
                sweep_classes_with_hashes(&self.closure, &self.a_in, &self.a_out, &self.row_hash);
            self.class_size = class_sizes(&self.classes, m);
        }
        // A rate-only change keeps rows and classes but shifts every
        // bound, so the order always rebuilds past this point.
        self.order = egress_order(
            &self.closure,
            &self.a_in,
            &self.a_out,
            &self.classes,
            self.rate,
            self.seg_lb(),
        );
    }

    /// Full rebuild for a new shape: closure, fingerprints, terms,
    /// classes, order.
    fn rebuild<D: DistanceOracle + ?Sized>(&mut self, dm: &D, agg: &AttachAggregates, n: usize) {
        self.closure.rebuild_over(dm, agg.switches());
        let m = self.closure.len();
        // New closure (or chain length) ⇒ every memoized chain is stale.
        self.interior.reset(m);
        self.switches = agg.switches().to_vec();
        self.n = n;
        self.row_hash = if m < ORBIT_MIN_SWITCHES {
            Vec::new() // singleton classes never read the fingerprints
        } else {
            closure_row_hashes(&self.closure)
        };
        self.c_min = closure_c_min(&self.closure);
        self.rate = agg.total_rate();
        self.a_in = (0..m).map(|i| agg.a_in(self.closure.node(i))).collect();
        self.a_out = (0..m).map(|i| agg.a_out(self.closure.node(i))).collect();
        self.classes =
            sweep_classes_with_hashes(&self.closure, &self.a_in, &self.a_out, &self.row_hash);
        self.class_size = class_sizes(&self.classes, m);
        self.order = egress_order(
            &self.closure,
            &self.a_in,
            &self.a_out,
            &self.classes,
            self.rate,
            self.seg_lb(),
        );
        self.valid = true;
        self.touched = false;
    }
}

/// Warm-started Algorithm 3: bit-identical to
/// [`crate::dp_placement_with_agg`] (cost and lexicographic switch
/// tie-break), faster when `cache` is fresh and `incumbent` is near the
/// optimum. See the module docs for the mechanism and the cache contract.
///
/// `incumbent` is the previous epoch's placement (if any); it is priced
/// under the *current* aggregates and only used when still feasible for
/// this candidate set and chain length, so a stale incumbent can cost
/// nothing but the seeding opportunity.
///
/// # Errors
///
/// Same conditions as [`crate::dp_placement`].
pub fn dp_placement_warm<D: DistanceOracle + ?Sized>(
    _g: &Graph,
    dm: &D,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
    cache: &mut BoundCache,
    incumbent: Option<&Placement>,
) -> Result<(Placement, Cost), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let n = sfc.len();
    if n < 3 {
        // Closed-form paths: no closure, no bounds, nothing to warm.
        return dp_placement_inner(dm, w, sfc, agg, None);
    }
    let obs = ppdc_obs::global();
    let _span = obs.span(obs_names::SOLVER_WARM);
    let switches = agg.switches();
    if switches.len() < n {
        return Err(too_few(switches.len(), n));
    }
    cache.refresh(dm, agg, n);
    // Seed only from a placement that is feasible *now*: right length,
    // injective, entirely inside the current candidate set. An infeasible
    // seed could undercut the true optimum and prune it away.
    let seed = incumbent.and_then(|p| {
        let s = p.switches();
        (s.len() == n && p.is_injective() && s.iter().all(|x| switches.contains(x)))
            .then(|| agg.comm_cost(dm, p))
    });
    let ctx = SweepCtx {
        dm,
        agg,
        closure: &cache.closure,
        n,
        rate: cache.rate,
        seg_lb: cache.seg_lb(),
        a_in: &cache.a_in,
        a_out: &cache.a_out,
        classes: &cache.classes,
        class_size: &cache.class_size,
        memo: Some(&cache.interior),
        incumbent: AtomicU64::new(seed.unwrap_or(u64::MAX)),
    };
    let result = match seed {
        Some(ub) => {
            obs.add(obs_names::SOLVER_WARM_SEEDED, 1);
            // Dirty-row egress sweep: an order entry whose cached bound
            // strictly exceeds the seed would be pruned at its first
            // atomic load anyway (the incumbent only falls from the
            // seed), so it is dropped before spawning its task. The
            // sweep's own prune counters are kept in step so warm and
            // cold runs report comparable totals.
            let live: Vec<(Cost, usize)> = cache
                .order
                .iter()
                .copied()
                .filter(|&(bound, _)| bound <= ub)
                .collect();
            let skipped = cache.order.len() - live.len();
            if skipped > 0 {
                let orbit = cache
                    .order
                    .iter()
                    .filter(|&&(bound, t_ix)| bound > ub && cache.class_size[t_ix] > 1)
                    .count();
                let skipped64 = u64::try_from(skipped).unwrap_or(u64::MAX);
                obs.add(obs_names::SOLVER_WARM_EGRESS_SKIPPED, skipped64);
                obs.add(obs_names::SOLVER_DP_EGRESS_PRUNED, skipped64);
                obs.add(
                    obs_names::SOLVER_DP_ORBIT_PRUNED,
                    u64::try_from(orbit).unwrap_or(u64::MAX),
                );
            }
            ctx.run_sweep(&live)
        }
        None => ctx.run_sweep(&cache.order),
    };
    // Same `strict-invariants` contract as the cold solve: injective
    // placement, reported cost equal to an independent re-evaluation.
    #[cfg(feature = "strict-invariants")]
    if let Ok((p, c)) = &result {
        assert!(
            p.is_injective(),
            "dp_placement_warm returned a non-injective placement: {:?}",
            p.switches()
        );
        assert_eq!(
            *c,
            agg.comm_cost(dm, p),
            "dp_placement_warm's reported cost disagrees with re-evaluation"
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dp_placement_exhaustive_with_agg, dp_placement_with_agg};
    use ppdc_topology::builders::fat_tree;
    use ppdc_topology::DistanceMatrix;

    fn fixture() -> (Graph, DistanceMatrix, Workload) {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..hosts.len() {
            w.add_pair(
                hosts[i],
                hosts[(i * 7 + 3) % hosts.len()],
                (i as u64) % 9 + 1,
            );
        }
        (g, dm, w)
    }

    #[test]
    fn warm_matches_cold_across_epochs() {
        let (g, dm, mut w) = fixture();
        let sfc = Sfc::of_len(4).unwrap();
        let mut cache = BoundCache::new();
        let mut prev: Option<Placement> = None;
        for epoch in 0..6u64 {
            // Perturb a couple of flows each epoch and report the churn
            // through the aggregate-delta path the stream engine uses.
            let mut rates: Vec<u64> = (0..w.num_flows())
                .map(|i| (i as u64 + epoch * 13) % 17 + 1)
                .collect();
            let bump = (epoch as usize) % rates.len();
            rates[bump] += 40;
            w.set_rates(&rates).unwrap();
            let agg = AttachAggregates::build(&g, &dm, &w);
            // A fresh agg build gives no delta list; force the diff path.
            cache.note_mass_deltas(&[HostMassDelta {
                host: g.hosts().next().unwrap(),
                d_in: 0,
                d_out: 0,
            }]);
            let (wp, wc) =
                dp_placement_warm(&g, &dm, &w, &sfc, &agg, &mut cache, prev.as_ref()).unwrap();
            let (cp, cc) = dp_placement_exhaustive_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            assert_eq!(wc, cc, "epoch {epoch}: cost diverged");
            assert_eq!(
                wp.switches(),
                cp.switches(),
                "epoch {epoch}: tie-break diverged"
            );
            prev = Some(wp);
        }
    }

    #[test]
    fn quiet_epoch_reuses_every_row() {
        let (g, dm, w) = fixture();
        let sfc = Sfc::of_len(3).unwrap();
        let agg = AttachAggregates::build(&g, &dm, &w);
        let mut cache = BoundCache::new();
        let (p1, c1) = dp_placement_warm(&g, &dm, &w, &sfc, &agg, &mut cache, None).unwrap();
        assert!(cache.is_warm());
        // No deltas reported: the second solve must take the verbatim-reuse
        // path and still agree with a cold solve.
        let (p2, c2) = dp_placement_warm(&g, &dm, &w, &sfc, &agg, &mut cache, Some(&p1)).unwrap();
        let (p3, c3) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
        assert_eq!((c1, p1.switches()), (c2, p2.switches()));
        assert_eq!((c2, p2.switches()), (c3, p3.switches()));
    }

    #[test]
    fn candidate_set_change_triggers_rebuild() {
        let (g, dm, w) = fixture();
        let sfc = Sfc::of_len(3).unwrap();
        let mut cache = BoundCache::new();
        let full = AttachAggregates::build(&g, &dm, &w);
        let (pf, cf) = dp_placement_warm(&g, &dm, &w, &sfc, &full, &mut cache, None).unwrap();
        // Restrict the candidates: the cache must rebuild (shape change)
        // and the old incumbent — now outside the set — must not seed.
        let subset: Vec<NodeId> = g.switches().step_by(2).collect();
        let ragg = AttachAggregates::build_restricted(&g, &dm, &w, &subset);
        let (rp, rc) = dp_placement_warm(&g, &dm, &w, &sfc, &ragg, &mut cache, Some(&pf)).unwrap();
        let (xp, xc) = dp_placement_exhaustive_with_agg(&g, &dm, &w, &sfc, &ragg).unwrap();
        assert_eq!((rc, rp.switches()), (xc, xp.switches()));
        // And back to the full set, seeding from the restricted solution.
        let (bp, bc) = dp_placement_warm(&g, &dm, &w, &sfc, &full, &mut cache, Some(&rp)).unwrap();
        assert_eq!((bc, bp.switches()), (cf, pf.switches()));
    }

    #[test]
    fn small_n_delegates_to_closed_forms() {
        let (g, dm, w) = fixture();
        let agg = AttachAggregates::build(&g, &dm, &w);
        let mut cache = BoundCache::new();
        for n in 1..=2usize {
            let sfc = Sfc::of_len(n).unwrap();
            let (wp, wc) = dp_placement_warm(&g, &dm, &w, &sfc, &agg, &mut cache, None).unwrap();
            let (cp, cc) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
            assert_eq!((wc, wp.switches()), (cc, cp.switches()), "n={n}");
            assert!(
                !cache.is_warm(),
                "n={n}: closed forms must not warm the cache"
            );
        }
    }

    #[test]
    fn infeasible_incumbents_are_ignored() {
        let (g, dm, w) = fixture();
        let sfc = Sfc::of_len(4).unwrap();
        let agg = AttachAggregates::build(&g, &dm, &w);
        let (cp, cc) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
        let switches: Vec<NodeId> = g.switches().collect();
        let hosts: Vec<NodeId> = g.hosts().collect();
        let bad: Vec<Placement> = vec![
            // Wrong length. (Non-injectivity is unconstructible — even
            // `Placement::new_unchecked` asserts distinctness — so the
            // seed guard's injectivity arm is pure release-build defense.)
            Placement::new_unchecked(switches[..3].to_vec()),
            // Outside the candidate set.
            Placement::new_unchecked(vec![hosts[0], switches[1], switches[2], switches[3]]),
        ];
        for p in &bad {
            let mut cache = BoundCache::new();
            let (wp, wc) = dp_placement_warm(&g, &dm, &w, &sfc, &agg, &mut cache, Some(p)).unwrap();
            assert_eq!((wc, wp.switches()), (cc, cp.switches()));
        }
    }
}
