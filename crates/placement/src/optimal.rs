//! **Optimal** — Algorithm 4: exact VNF placement.
//!
//! The paper's benchmark enumerates all `|V_s|·(|V_s|−1)…(|V_s|−n+1)`
//! ordered placements. We keep that literal enumeration
//! ([`exhaustive_placement`]) for small cross-checks and provide an exact
//! branch-and-bound ([`optimal_placement`]) that reaches the paper's
//! experiment sizes:
//!
//! * nodes are ordered best-first (`A_in` for the ingress, closure distance
//!   for interior hops),
//! * a partial chain `p₁ … p_k` is pruned when
//!   `A_in[p₁] + Σλ·chain + Σλ·(n−k)·δ_min + min_unused A_out ≥ best`,
//!   where `δ_min` is the cheapest switch-to-switch closure distance — an
//!   admissible bound, so optimality is preserved,
//! * the incumbent is seeded with a greedy chain so pruning bites from the
//!   first node.

use crate::aggregates::AttachAggregates;
use crate::PlacementError;
use ppdc_model::{Placement, Sfc, Workload};
use ppdc_stroll::{Exactness, StrollError};
use ppdc_topology::{Cost, DistanceMatrix, Graph, MetricClosure, NodeId, INFINITY};

/// Default expansion budget for the placement branch-and-bound.
pub const DEFAULT_BUDGET: u64 = 200_000_000;

struct Search<'a> {
    agg: &'a AttachAggregates,
    closure: &'a MetricClosure,
    n: usize,
    rate: u64,
    min_edge: Cost,
    sorted_from: Vec<Vec<usize>>, // per closure node, others by distance
    first_order: Vec<usize>,      // closure nodes by A_in
    used: Vec<bool>,
    seq: Vec<usize>,
    best_cost: Cost,
    best_seq: Vec<usize>,
    expansions: u64,
    budget: u64,
    prune: bool,
}

impl<'a> Search<'a> {
    fn new(
        agg: &'a AttachAggregates,
        closure: &'a MetricClosure,
        n: usize,
        budget: u64,
        prune: bool,
    ) -> Self {
        let m = closure.len();
        let mut min_edge = INFINITY;
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    min_edge = min_edge.min(closure.cost_ix(i, j));
                }
            }
        }
        if m < 2 {
            min_edge = 0;
        }
        let mut sorted_from = vec![Vec::new(); m];
        for (u, slot) in sorted_from.iter_mut().enumerate() {
            let mut list: Vec<usize> = (0..m).filter(|&x| x != u).collect();
            list.sort_by_key(|&x| (closure.cost_ix(u, x), x));
            *slot = list;
        }
        let mut first_order: Vec<usize> = (0..m).collect();
        first_order.sort_by_key(|&x| (agg.a_in(closure.node(x)), x));
        Search {
            agg,
            closure,
            n,
            rate: agg.total_rate(),
            min_edge,
            sorted_from,
            first_order,
            used: vec![false; m],
            seq: Vec::with_capacity(n),
            best_cost: INFINITY,
            best_seq: Vec::new(),
            expansions: 0,
            budget,
            prune,
        }
    }

    fn seed_greedy(&mut self) {
        let mut used = vec![false; self.closure.len()];
        let mut seq = Vec::with_capacity(self.n);
        let first = self.first_order[0];
        used[first] = true;
        seq.push(first);
        let mut cost = self.agg.a_in(self.closure.node(first));
        let mut cur = first;
        for _ in 1..self.n {
            // The caller checks that the closure holds >= n candidates; if
            // that invariant ever breaks, leave the incumbent at INFINITY
            // and let the search run unseeded instead of panicking.
            let Some(next) = self.sorted_from[cur].iter().copied().find(|&x| !used[x]) else {
                return;
            };
            cost += self.rate * self.closure.cost_ix(cur, next);
            used[next] = true;
            seq.push(next);
            cur = next;
        }
        cost += self.agg.a_out(self.closure.node(cur));
        self.best_cost = cost;
        self.best_seq = seq;
    }

    fn min_unused_a_out(&self, last: usize) -> Cost {
        // The egress is either `last` (when depth == n, handled at leaves)
        // or one of the unused nodes.
        (0..self.closure.len())
            .filter(|&x| !self.used[x] || x == last)
            .map(|x| self.agg.a_out(self.closure.node(x)))
            .min()
            .unwrap_or(0)
    }

    fn dfs(&mut self, last: usize, depth: usize, g: Cost) -> Result<(), StrollError> {
        self.expansions += 1;
        if self.expansions > self.budget {
            return Err(StrollError::BudgetExhausted {
                budget: self.budget,
            });
        }
        if depth == self.n {
            let total = g + self.agg.a_out(self.closure.node(last));
            if total < self.best_cost {
                self.best_cost = total;
                self.best_seq = self.seq.clone();
            }
            return Ok(());
        }
        if self.prune {
            let lb = g
                + self.rate * self.min_edge * (self.n - depth) as Cost // analyzer:allow(lossy-cast) -- usize → u64 is lossless on every supported target
                + self.min_unused_a_out(last);
            if lb >= self.best_cost {
                return Ok(());
            }
        }
        let order = self.sorted_from[last].clone();
        for x in order {
            if self.used[x] {
                continue;
            }
            let step = self.rate * self.closure.cost_ix(last, x);
            self.used[x] = true;
            self.seq.push(x);
            self.dfs(x, depth + 1, g + step)?;
            self.seq.pop();
            self.used[x] = false;
        }
        Ok(())
    }

    /// Runs the search to completion or to its deadline. The greedy seed
    /// always installs an incumbent first, so a feasible placement comes
    /// back even when the budget dies on the first expansion.
    fn run_with_exactness(mut self) -> (Placement, Cost, Exactness) {
        self.seed_greedy();
        let mut exactness = Exactness::Exact;
        let first_order = self.first_order.clone();
        for x in first_order {
            if self.prune {
                // Even a free interior cannot beat the incumbent.
                let lb = self.agg.a_in(self.closure.node(x))
                    + self.rate * self.min_edge * (self.n - 1) as Cost; // analyzer:allow(lossy-cast) -- usize → u64 is lossless on every supported target
                if lb >= self.best_cost {
                    continue;
                }
            }
            self.used[x] = true;
            self.seq.push(x);
            let g = self.agg.a_in(self.closure.node(x));
            if self.dfs(x, 1, g).is_err() {
                // dfs only fails on budget exhaustion; keep the incumbent.
                exactness = Exactness::Degraded {
                    explored: self.expansions,
                };
                break;
            }
            self.seq.pop();
            self.used[x] = false;
        }
        let switches: Vec<NodeId> = self
            .best_seq
            .iter()
            .map(|&i| self.closure.node(i))
            .collect();
        let placement = Placement::new_unchecked(switches);
        // `strict-invariants` contract: every search exit (exact,
        // budget-degraded, exhaustive) funnels through here and must hand
        // back an injective placement.
        #[cfg(feature = "strict-invariants")]
        assert!(
            placement.is_injective(),
            "branch-and-bound returned a non-injective placement: {:?}",
            placement.switches()
        );
        (placement, self.best_cost, exactness)
    }

    fn run(self) -> Result<(Placement, Cost), StrollError> {
        let budget = self.budget;
        match self.run_with_exactness() {
            (p, c, Exactness::Exact) => Ok((p, c)),
            (_, _, Exactness::Degraded { .. }) => Err(StrollError::BudgetExhausted { budget }),
        }
    }
}

fn check_inputs(g: &Graph, w: &Workload, sfc: &Sfc) -> Result<Vec<NodeId>, PlacementError> {
    let switches: Vec<NodeId> = g.switches().collect();
    check_inputs_restricted(g, w, sfc, &switches)?;
    Ok(switches)
}

fn check_inputs_restricted(
    _g: &Graph,
    w: &Workload,
    sfc: &Sfc,
    candidates: &[NodeId],
) -> Result<(), PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    if candidates.len() < sfc.len() {
        return Err(PlacementError::Model(
            ppdc_model::ModelError::TooFewSwitches {
                switches: candidates.len(),
                vnfs: sfc.len(),
            },
        ));
    }
    Ok(())
}

/// Exact optimal placement with the default budget.
pub fn optimal_placement(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    optimal_placement_with_budget(g, dm, w, sfc, DEFAULT_BUDGET)
}

/// Exact optimal placement with a caller-chosen branch-and-bound budget.
///
/// # Errors
///
/// [`PlacementError::Stroll`] with
/// [`StrollError::BudgetExhausted`] when the search could not complete —
/// callers fall back to [`crate::dp_placement`] or report the point as
/// not computed, as the paper's exhaustive baseline must at scale.
pub fn optimal_placement_with_budget(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    budget: u64,
) -> Result<(Placement, Cost), PlacementError> {
    let agg = AttachAggregates::build(g, dm, w);
    optimal_placement_with_agg(g, dm, w, sfc, budget, &agg)
}

/// [`optimal_placement_with_budget`] against caller-supplied aggregates
/// (see [`crate::dp_placement_with_agg`] for when this matters). Candidate
/// switches come from `agg` itself, so restricted aggregates confine the
/// search to their candidate set.
///
/// # Errors
///
/// Same conditions as [`optimal_placement_with_budget`].
pub fn optimal_placement_with_agg(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    budget: u64,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    check_inputs_restricted(g, w, sfc, agg.switches())?;
    let closure = MetricClosure::over(dm, agg.switches());
    Ok(Search::new(agg, &closure, sfc.len(), budget, true).run()?)
}

/// Optimal placement under a deadline: never fails on exhaustion.
///
/// The degraded-solver contract ([`Exactness`]): when the branch-and-bound
/// budget runs out, the best incumbent found so far is returned flagged
/// [`Exactness::Degraded`] instead of aborting with
/// [`StrollError::BudgetExhausted`]. The incumbent is seeded greedily before
/// the search, so a feasible placement always comes back.
///
/// # Errors
///
/// Only input errors ([`PlacementError::NoFlows`], too few candidate
/// switches) — never budget exhaustion.
pub fn optimal_placement_with_deadline(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    budget: u64,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost, Exactness), PlacementError> {
    let _span = ppdc_obs::global().span(ppdc_obs::names::SOLVER_OPTIMAL_PLACEMENT);
    check_inputs_restricted(g, w, sfc, agg.switches())?;
    let closure = MetricClosure::over(dm, agg.switches());
    Ok(Search::new(agg, &closure, sfc.len(), budget, true).run_with_exactness())
}

/// The literal `O(|V_s|ⁿ)` enumeration of Algorithm 4 (no pruning).
/// Only sensible on small instances; used to validate the branch-and-bound.
pub fn exhaustive_placement(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    let switches = check_inputs(g, w, sfc)?;
    let agg = AttachAggregates::build(g, dm, w);
    let closure = MetricClosure::over(dm, &switches);
    Ok(Search::new(&agg, &closure, sfc.len(), u64::MAX, false).run()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::dp_placement;
    use ppdc_model::comm_cost;
    use ppdc_topology::builders::{fat_tree, linear};

    #[test]
    fn bb_matches_exhaustive_on_linear() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h1, 100);
        w.add_pair(h2, h2, 1);
        for n in 1..=4 {
            let sfc = Sfc::of_len(n).unwrap();
            let (pb, cb) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
            let (pe, ce) = exhaustive_placement(&g, &dm, &w, &sfc).unwrap();
            assert_eq!(cb, ce, "n={n}");
            assert_eq!(cb, comm_cost(&dm, &w, &pb));
            assert_eq!(ce, comm_cost(&dm, &w, &pe));
        }
    }

    #[test]
    fn bb_matches_exhaustive_on_fat_tree() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], 50);
        w.add_pair(hosts[4], hosts[12], 3);
        for n in 1..=3 {
            let sfc = Sfc::of_len(n).unwrap();
            let (_, cb) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
            let (_, ce) = exhaustive_placement(&g, &dm, &w, &sfc).unwrap();
            assert_eq!(cb, ce, "n={n}");
        }
    }

    #[test]
    fn optimal_never_exceeds_dp() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        for i in 0..5 {
            w.add_pair(hosts[2 * i], hosts[2 * i + 1], (i as u64 + 1) * 10);
        }
        for n in 1..=5 {
            let sfc = Sfc::of_len(n).unwrap();
            let (_, copt) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
            let (_, cdp) = dp_placement(&g, &dm, &w, &sfc).unwrap();
            assert!(copt <= cdp, "n={n}: optimal {copt} > dp {cdp}");
        }
    }

    #[test]
    fn example1_optimal_is_410() {
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h1, 100);
        w.add_pair(h2, h2, 1);
        let sfc = Sfc::of_len(2).unwrap();
        let (_, cost) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cost, 410);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[15], 5);
        let sfc = Sfc::of_len(6).unwrap();
        assert!(matches!(
            optimal_placement_with_budget(&g, &dm, &w, &sfc, 3),
            Err(PlacementError::Stroll(StrollError::BudgetExhausted { .. }))
        ));
    }

    #[test]
    fn deadline_returns_feasible_incumbent() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[15], 5);
        let sfc = Sfc::of_len(6).unwrap();
        let agg = AttachAggregates::build(&g, &dm, &w);
        // The budget that makes the strict variant fail still produces a
        // valid, cost-consistent placement here.
        let (p, cost, ex) = optimal_placement_with_deadline(&g, &dm, &w, &sfc, 3, &agg).unwrap();
        assert!(!ex.is_exact());
        assert_eq!(p.len(), 6);
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        let (_, copt) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
        assert!(cost >= copt);
        // An ample deadline is exact and optimal.
        let (_, c2, ex2) =
            optimal_placement_with_deadline(&g, &dm, &w, &sfc, DEFAULT_BUDGET, &agg).unwrap();
        assert!(ex2.is_exact());
        assert_eq!(c2, copt);
    }

    #[test]
    fn restricted_aggregates_confine_the_candidates() {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[15], 5);
        w.add_pair(hosts[3], hosts[9], 11);
        let sfc = Sfc::of_len(2).unwrap();
        let all: Vec<NodeId> = g.switches().collect();
        let subset: Vec<NodeId> = all[..6].to_vec();
        let agg = AttachAggregates::build_restricted(&g, &dm, &w, &subset);
        let (p, cost, ex) =
            optimal_placement_with_deadline(&g, &dm, &w, &sfc, DEFAULT_BUDGET, &agg).unwrap();
        assert!(ex.is_exact());
        assert_eq!(cost, comm_cost(&dm, &w, &p));
        for &s in p.switches() {
            assert!(subset.contains(&s), "placement escaped the candidate set");
        }
        // Asking for more VNFs than candidates is a typed error.
        let sfc_big = Sfc::of_len(7).unwrap();
        assert!(matches!(
            optimal_placement_with_deadline(&g, &dm, &w, &sfc_big, DEFAULT_BUDGET, &agg),
            Err(PlacementError::Model(
                ppdc_model::ModelError::TooFewSwitches {
                    switches: 6,
                    vnfs: 7
                }
            ))
        ));
    }
}
