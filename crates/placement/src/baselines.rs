//! The two state-of-the-art placement baselines the paper compares against.
//!
//! * **Steering** (Zhang et al., ICNP'13 \[55\]): services are placed one by
//!   one in dependency order; each is dropped at the switch minimizing the
//!   traffic it immediately sees. With a single SFC the dependency degree
//!   of every consecutive pair is the same total traffic, so the placement
//!   order is the chain order and each VNF is placed *myopically* next to
//!   its already-placed predecessor.
//! * **Greedy** (Liu et al., TSC'17 \[34\]): middleboxes are sorted by
//!   importance (identical here — one policy) and placed by minimum *cost
//!   score*: the increment in total end-to-end delay plus the weighted
//!   average delay from the candidate switch to the (expected locations of
//!   the) still-unplaced middleboxes. We render the lookahead term as
//!   `(unplaced count) · Σλ · mean distance from the candidate to all
//!   switches`, the natural single-SFC reading of their score.
//!
//! Both are O(n·|V_s|·l) and, as the paper's Figs. 9–10 show, pay 2–3× the
//! DP's traffic cost because neither optimizes the chain as a whole.

use crate::aggregates::AttachAggregates;
use crate::PlacementError;
use ppdc_model::{ModelError, Placement, Sfc, Workload};
use ppdc_topology::{Cost, DistanceMatrix, Graph, NodeId};

fn check(g: &Graph, w: &Workload, sfc: &Sfc) -> Result<Vec<NodeId>, PlacementError> {
    if w.num_flows() == 0 {
        return Err(PlacementError::NoFlows);
    }
    let switches: Vec<NodeId> = g.switches().collect();
    if switches.len() < sfc.len() {
        return Err(PlacementError::Model(ModelError::TooFewSwitches {
            switches: switches.len(),
            vnfs: sfc.len(),
        }));
    }
    Ok(switches)
}

/// **Steering** \[55\]: chain-order, myopic per-VNF placement.
pub fn steering_placement(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    let agg = AttachAggregates::build(g, dm, w);
    steering_placement_with_agg(g, dm, w, sfc, &agg)
}

/// [`steering_placement`] against caller-supplied aggregates (see
/// [`crate::dp_placement_with_agg`] for when this matters).
pub fn steering_placement_with_agg(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    let switches = check(g, w, sfc)?;
    let n = sfc.len();
    let rate = agg.total_rate();
    let mut chosen: Vec<NodeId> = Vec::with_capacity(n);
    let mut used = vec![false; g.num_nodes()];
    for j in 0..n {
        let mut best: Option<(Cost, NodeId)> = None;
        for &x in &switches {
            if used[x.index()] {
                continue;
            }
            // Immediate traffic seen by f_{j+1} at x: from the sources (if
            // ingress) or the predecessor VNF, plus to the sinks if egress.
            let mut score = if j == 0 {
                agg.a_in(x)
            } else {
                rate * dm.cost(chosen[j - 1], x)
            };
            if j + 1 == n {
                score += agg.a_out(x);
            }
            if best.is_none_or(|(c, b)| score < c || (score == c && x < b)) {
                best = Some((score, x));
            }
        }
        // `check` guarantees switches.len() >= n, so a candidate always
        // exists; surface the typed error instead of panicking if that
        // invariant ever breaks.
        let Some((_, x)) = best else {
            return Err(PlacementError::Model(ModelError::TooFewSwitches {
                switches: switches.len(),
                vnfs: n,
            }));
        };
        used[x.index()] = true;
        chosen.push(x);
    }
    let p = Placement::new_unchecked(chosen);
    let cost = agg.comm_cost(dm, &p);
    Ok((p, cost))
}

/// **Greedy** (Liu et al. \[34\]): cost-score placement with an
/// unplaced-middlebox lookahead term.
pub fn greedy_placement(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
) -> Result<(Placement, Cost), PlacementError> {
    let agg = AttachAggregates::build(g, dm, w);
    greedy_placement_with_agg(g, dm, w, sfc, &agg)
}

/// [`greedy_placement`] against caller-supplied aggregates.
pub fn greedy_placement_with_agg(
    g: &Graph,
    dm: &DistanceMatrix,
    w: &Workload,
    sfc: &Sfc,
    agg: &AttachAggregates,
) -> Result<(Placement, Cost), PlacementError> {
    let switches = check(g, w, sfc)?;
    let n = sfc.len();
    let rate = agg.total_rate();
    // Summed switch-to-switch distance from each switch; divided by the
    // switch count only after multiplying into the score, so the expected
    // distance to an unplaced middlebox keeps its fractional part.
    let mut sum_dist = vec![0u64; g.num_nodes()];
    for &x in &switches {
        let total: Cost = switches.iter().map(|&y| dm.cost(x, y)).sum();
        sum_dist[x.index()] = total;
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(n);
    let mut used = vec![false; g.num_nodes()];
    for j in 0..n {
        let unplaced = (n - 1 - j) as u64; // analyzer:allow(lossy-cast) -- usize → u64 is lossless on every supported target
        let mut best: Option<(Cost, NodeId)> = None;
        for &x in &switches {
            if used[x.index()] {
                continue;
            }
            let increment = if j == 0 {
                agg.a_in(x)
            } else {
                rate * dm.cost(chosen[j - 1], x)
            };
            let egress_term = if j + 1 == n { agg.a_out(x) } else { 0 };
            let lookahead = unplaced * rate * sum_dist[x.index()] / switches.len() as u64; // analyzer:allow(lossy-cast) -- usize → u64 is lossless on every supported target
            let score = increment + egress_term + lookahead;
            if best.is_none_or(|(c, b)| score < c || (score == c && x < b)) {
                best = Some((score, x));
            }
        }
        // Same invariant as the steering loop above.
        let Some((_, x)) = best else {
            return Err(PlacementError::Model(ModelError::TooFewSwitches {
                switches: switches.len(),
                vnfs: n,
            }));
        };
        used[x.index()] = true;
        chosen.push(x);
    }
    let p = Placement::new_unchecked(chosen);
    let cost = agg.comm_cost(dm, &p);
    Ok((p, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::dp_placement;
    use crate::optimal::optimal_placement;
    use ppdc_model::comm_cost;
    use ppdc_topology::builders::{fat_tree, linear};

    fn fat_tree_workload() -> (Graph, DistanceMatrix, Workload) {
        let g = fat_tree(4).unwrap();
        let dm = DistanceMatrix::build(&g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], 90);
        w.add_pair(hosts[2], hosts[3], 50);
        w.add_pair(hosts[5], hosts[14], 5);
        w.add_pair(hosts[8], hosts[9], 40);
        (g, dm, w)
    }

    #[test]
    fn baselines_produce_valid_placements() {
        let (g, dm, w) = fat_tree_workload();
        for n in 1..=5 {
            let sfc = Sfc::of_len(n).unwrap();
            for f in [steering_placement, greedy_placement] {
                let (p, cost) = f(&g, &dm, &w, &sfc).unwrap();
                assert_eq!(p.len(), n);
                assert_eq!(cost, comm_cost(&dm, &w, &p), "cost is exact Eq.1");
                // Validated construction: all distinct switches.
                Placement::new(&g, &sfc, p.switches().to_vec()).unwrap();
            }
        }
    }

    #[test]
    fn baselines_never_beat_optimal() {
        let (g, dm, w) = fat_tree_workload();
        for n in 1..=4 {
            let sfc = Sfc::of_len(n).unwrap();
            let (_, copt) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
            let (_, cst) = steering_placement(&g, &dm, &w, &sfc).unwrap();
            let (_, cgr) = greedy_placement(&g, &dm, &w, &sfc).unwrap();
            assert!(copt <= cst, "n={n}");
            assert!(copt <= cgr, "n={n}");
        }
    }

    #[test]
    fn dp_beats_baselines_on_skewed_traffic() {
        // The myopic baselines chase the heavy sources hop by hop; DP
        // plans the whole chain. On rate-skewed fat-tree traffic DP must
        // be at least as good, and typically strictly better.
        let (g, dm, w) = fat_tree_workload();
        let sfc = Sfc::of_len(4).unwrap();
        let (_, cdp) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        let (_, cst) = steering_placement(&g, &dm, &w, &sfc).unwrap();
        let (_, cgr) = greedy_placement(&g, &dm, &w, &sfc).unwrap();
        assert!(cdp <= cst);
        assert!(cdp <= cgr);
    }

    #[test]
    fn single_vnf_baselines_match_median() {
        // With n = 1 all strategies reduce to the same weighted-median
        // choice, so costs coincide.
        let (g, h1, h2) = linear(5).unwrap();
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(h1, h2, 3);
        let sfc = Sfc::of_len(1).unwrap();
        let (_, cdp) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        let (_, cst) = steering_placement(&g, &dm, &w, &sfc).unwrap();
        assert_eq!(cdp, cst);
    }

    #[test]
    fn error_paths() {
        let (g, h1, h2) = linear(2).unwrap();
        let dm = DistanceMatrix::build(&g);
        let sfc = Sfc::of_len(2).unwrap();
        assert!(matches!(
            steering_placement(&g, &dm, &Workload::new(), &sfc),
            Err(PlacementError::NoFlows)
        ));
        let mut w = Workload::new();
        w.add_pair(h1, h2, 1);
        let long = Sfc::of_len(3).unwrap();
        assert!(greedy_placement(&g, &dm, &w, &long).is_err());
    }
}
