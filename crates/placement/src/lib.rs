//! **TOP — traffic-optimal VNF placement** (Section IV of the paper).
//!
//! Given a PPDC, a workload of VM flows with rates `λ`, and an SFC of `n`
//! VNFs, find the placement `p : F → V_s` minimizing the total
//! communication cost `C_a(p)` of Eq. 1.
//!
//! Solvers (paper's Table II):
//!
//! * [`dp_placement`] — **DP** (Algorithm 3): enumerate ingress/egress
//!   switch pairs, solve an `(n−2)`-stroll between them with the shared-
//!   target DP of Algorithm 2, pick the cheapest assembly. Parallelized
//!   over egress switches with rayon.
//! * [`dp_placement_warm`] — the same sweep warm-started for streaming
//!   epochs: a persistent [`BoundCache`] of bound terms and egress order
//!   plus incumbent seeding, bit-identical to the cold solve ([`warm`]).
//! * [`optimal_placement`] — **Optimal** (Algorithm 4): exact
//!   branch-and-bound over ordered distinct switch sequences (see
//!   [`optimal`] for the bound); [`exhaustive_placement`] is the paper's
//!   literal `O(|V_s|ⁿ)` enumeration for small cross-checks.
//! * [`steering_placement`] — **Steering** \[55\]: one-by-one greedy
//!   placement in dependency order.
//! * [`greedy_placement`] — **Greedy** (Liu et al. \[34\]): cost-score
//!   placement with an unplaced-MB lookahead term.
//! * [`top1`] — the TOP-1 single-flow entry points used by Fig. 7, wiring
//!   the n-stroll solvers of [`ppdc_stroll`] to placements.
//!
//! Two of the paper's future-work directions are implemented as
//! extensions: [`replication`] (multiple instances per VNF with per-flow
//! nearest-replica routing) and [`scaling`] (VNFs that shrink or grow the
//! traffic they forward, e.g. filtering firewalls).
//!
//! All solvers return the placement *and* its exact `C_a` (recomputed via
//! the attach-cost aggregates of [`AttachAggregates`], so reported costs
//! are always consistent with [`ppdc_model::comm_cost`]).

// The solver crates carry the workspace no-panic discipline at the
// compiler level too: ppdc-analyzer rule R1 catches unwrap/expect
// lexically, clippy enforces it semantically.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod aggregates;
pub mod baselines;
pub mod dp;
pub mod optimal;
pub mod replication;
pub mod scaling;
pub mod top1;
pub mod warm;

pub use aggregates::{AggregateError, AttachAggregates, HostMassDelta};
pub use baselines::{
    greedy_placement, greedy_placement_with_agg, steering_placement, steering_placement_with_agg,
};
pub use dp::{
    dp_placement, dp_placement_exhaustive_with_agg, dp_placement_with_agg,
    dp_placement_with_closure, placement_cost_lower_bound,
};
pub use optimal::{
    exhaustive_placement, optimal_placement, optimal_placement_with_agg,
    optimal_placement_with_budget, optimal_placement_with_deadline,
};
pub use replication::{
    comm_cost_replicated, flow_cost_replicated, greedy_replication, ReplicatedPlacement,
};
pub use scaling::{
    comm_cost_scaled, optimal_placement_scaled, scaled_segment_rates, TrafficScaling,
};
pub use top1::{top1_dp, top1_optimal, top1_primal_dual, Top1Solution};
pub use warm::{dp_placement_warm, BoundCache};

use ppdc_model::ModelError;
use ppdc_stroll::StrollError;

/// Errors produced by placement solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Invalid model input (bad SFC, too few switches, …).
    Model(ModelError),
    /// The underlying stroll solver failed.
    Stroll(StrollError),
    /// The workload has no flows — TOP is vacuous without traffic.
    NoFlows,
}

impl From<ModelError> for PlacementError {
    fn from(e: ModelError) -> Self {
        PlacementError::Model(e)
    }
}

impl From<StrollError> for PlacementError {
    fn from(e: StrollError) -> Self {
        PlacementError::Stroll(e)
    }
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Model(e) => write!(f, "model error: {e}"),
            PlacementError::Stroll(e) => write!(f, "stroll error: {e}"),
            PlacementError::NoFlows => write!(f, "workload has no flows"),
        }
    }
}

impl std::error::Error for PlacementError {}
