//! # ppdc — traffic-optimal VNF placement and migration
//!
//! A Rust implementation of the algorithmic framework of *"Traffic-Optimal
//! Virtual Network Function Placement and Migration in Dynamic Cloud Data
//! Centers"* (Tran, Sun, Tang, Pan — IPDPS 2022): place a service function
//! chain's VNFs in a policy-preserving data center to minimize total
//! network traffic (**TOP**), then migrate them adaptively as the traffic
//! shifts (**TOM**).
//!
//! This crate re-exports the whole workspace:
//!
//! * [`topology`] — fat-trees and friends, shortest paths, metric closures,
//! * [`model`] — VMs, flows, SFCs, placements, the Eq. 1 / Eq. 8 cost model,
//! * [`stroll`] — the n-stroll problem: DP (Algorithm 2), exact
//!   branch-and-bound, Goemans–Williamson primal-dual (Algorithm 1),
//! * [`mcf`] — a minimum-cost-flow solver (substrate for the MCF baseline),
//! * [`placement`] — TOP solvers (Algorithms 3 and 4) and the
//!   Steering/Greedy baselines,
//! * [`migration`] — TOM solvers (Algorithms 5 and 6: mPareto and exact)
//!   and the PLAN/MCF VM-migration baselines,
//! * [`traffic`] — production-style workload and diurnal dynamic-rate
//!   generation,
//! * [`sim`] — the hourly TOP → TOM lifetime simulator and statistics.
//!
//! ## Quickstart
//!
//! The paper's running example (Fig. 1 / Fig. 3): two VM pairs on a
//! 5-switch linear PPDC, a 2-VNF SFC, a traffic swap, and a migration that
//! recovers 58.6 % of the cost:
//!
//! ```
//! use ppdc::model::{comm_cost, Sfc, Workload};
//! use ppdc::migration::mpareto;
//! use ppdc::placement::dp_placement;
//! use ppdc::topology::{builders::linear, DistanceMatrix};
//!
//! let (g, h1, h2) = linear(5).unwrap();
//! let dm = DistanceMatrix::build(&g);
//! let mut w = Workload::new();
//! w.add_pair(h1, h1, 100); // (v1, v1') on h1
//! w.add_pair(h2, h2, 1);   // (v2, v2') on h2
//! let sfc = Sfc::named(["firewall", "cache-proxy"]).unwrap();
//!
//! // TOP: the initial traffic-optimal placement costs 410.
//! let (p, cost) = dp_placement(&g, &dm, &w, &sfc).unwrap();
//! assert_eq!(cost, 410);
//!
//! // The rates swap — the old placement now costs 1004.
//! w.set_rates(&[1, 100]).unwrap();
//! assert_eq!(comm_cost(&dm, &w, &p), 1004);
//!
//! // TOM: mPareto migrates both VNFs (cost 6) and lands at 416 total.
//! let out = mpareto(&g, &dm, &w, &sfc, &p, 1).unwrap();
//! assert_eq!(out.total_cost, 416);
//! assert_eq!(out.num_migrations, 2);
//! ```

pub use ppdc_mcf as mcf;
pub use ppdc_migration as migration;
pub use ppdc_model as model;
pub use ppdc_placement as placement;
pub use ppdc_sim as sim;
pub use ppdc_stroll as stroll;
pub use ppdc_topology as topology;
pub use ppdc_traffic as traffic;
