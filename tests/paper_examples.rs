//! Integration tests replaying every worked example of the paper.

use ppdc::migration::{mpareto, optimal_migration};
use ppdc::model::{chain_cost, comm_cost, migration_cost, total_cost, Placement, Sfc, Workload};
use ppdc::placement::{dp_placement, optimal_placement, top1_dp, top1_optimal};
use ppdc::stroll::{dp_stroll, optimal_stroll, StrollInstance};
use ppdc::topology::{builders::linear, DistanceMatrix, FatTree, Graph, MetricClosure, NodeId};

/// Example 1 (Fig. 3): the k = 2 fat tree is the 5-switch linear PPDC.
/// Initial placement costs 410; the rate swap raises it to 1004; migrating
/// (f1 → s5, f2 → s4) costs 6 and lands at 416 — a 58.6 % reduction.
#[test]
fn example1_full_story() {
    let (g, h1, h2) = linear(5).unwrap();
    let dm = DistanceMatrix::build(&g);
    let mut w = Workload::new();
    w.add_pair(h1, h1, 100);
    w.add_pair(h2, h2, 1);
    let sfc = Sfc::of_len(2).unwrap();

    let (p, c) = dp_placement(&g, &dm, &w, &sfc).unwrap();
    assert_eq!(c, 410);
    let (_, c_opt) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
    assert_eq!(c_opt, 410, "DP finds the optimum here");

    w.set_rates(&[1, 100]).unwrap();
    assert_eq!(comm_cost(&dm, &w, &p), 1004);

    let out = mpareto(&g, &dm, &w, &sfc, &p, 1).unwrap();
    assert_eq!(out.migration_cost, 6);
    assert_eq!(out.comm_cost, 410);
    assert_eq!(out.total_cost, 416);
    let reduction: f64 = (1004.0 - 416.0) / 1004.0;
    assert!((reduction - 0.586).abs() < 0.001, "58.6% reduction");

    // The exact TOM search agrees.
    let opt = optimal_migration(&g, &dm, &w, &sfc, &p, 1, Some(&out.migration)).unwrap();
    assert_eq!(opt.total_cost, 416);
}

/// Example 2 (Fig. 4): the DP on the metric closure finds the cost-6
/// 2-stroll (the walk s, D, t, C, t — s, D, C, t in the closure), not the
/// cost-7 path s, A, B, t.
#[test]
fn example2_dp_on_closure() {
    let mut g = Graph::new();
    let s = g.add_switch("s");
    let a = g.add_switch("A");
    let b = g.add_switch("B");
    let c = g.add_switch("C");
    let d = g.add_switch("D");
    let t = g.add_switch("t");
    g.add_edge(s, a, 2).unwrap();
    g.add_edge(a, b, 3).unwrap();
    g.add_edge(b, t, 2).unwrap();
    g.add_edge(s, d, 2).unwrap();
    g.add_edge(d, t, 2).unwrap();
    g.add_edge(t, c, 1).unwrap();
    let dm = DistanceMatrix::build(&g);
    let mc = MetricClosure::over(&dm, &[s, a, b, c, d, t]);
    let inst = StrollInstance::new(&mc, s, t, 2).unwrap();
    let dp = dp_stroll(&inst).unwrap();
    assert_eq!(dp.cost, 6);
    assert_eq!(dp.distinct, vec![d, c]);
    let opt = optimal_stroll(&inst).unwrap();
    assert_eq!(opt.cost, 6, "the DP solution is optimal (Theorem 3 case)");
}

/// Example 3 (Fig. 2): placing 7 VNFs between two hosts in different pods
/// of the k = 4 fat-tree yields an 8-edge path through 7 distinct switches
/// (the looping 8-edge walk only reaches 5 distinct switches and loses).
#[test]
fn example3_seven_stroll() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let h4 = ft.rack(1)[1];
    let h5 = ft.rack(2)[0];
    let dp = top1_dp(g, &dm, h4, h5, 1, 7).unwrap();
    assert_eq!(dp.comm_cost, 8);
    assert_eq!(dp.placement.len(), 7);
    let opt = top1_optimal(g, &dm, h4, h5, 1, 7, u64::MAX).unwrap();
    assert_eq!(opt.comm_cost, 8);
}

/// Theorem 1: TOP-1 is the n-stroll problem — the placement induced by the
/// optimal stroll has exactly the stroll's cost on the linear PPDC (where
/// optimal strolls are simple paths).
#[test]
fn theorem1_equivalence_on_linear() {
    let (g, h1, h2) = linear(6).unwrap();
    let dm = DistanceMatrix::build(&g);
    for n in 1..=6 {
        let sol = top1_optimal(&g, &dm, h1, h2, 3, n, u64::MAX).unwrap();
        assert_eq!(sol.comm_cost, sol.stroll_cost, "n={n}");
        // Check against a hand-built placement on the first n switches.
        let switches: Vec<NodeId> = g.switches().take(n).collect();
        let sfc = Sfc::of_len(n).unwrap();
        let manual = Placement::new(&g, &sfc, switches).unwrap();
        let manual_cost = ppdc::model::comm_cost_flow(&dm, h1, h2, 3, &manual);
        assert!(sol.comm_cost <= manual_cost);
    }
}

/// Theorem 4: TOM with μ = 0 is TOP — Eq. 8 degenerates to Eq. 1.
#[test]
fn theorem4_mu_zero() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let hosts: Vec<NodeId> = g.hosts().collect();
    let mut w = Workload::new();
    w.add_pair(hosts[0], hosts[3], 11);
    w.add_pair(hosts[8], hosts[14], 70);
    let sfc = Sfc::of_len(3).unwrap();
    let (p, _) = dp_placement(g, &dm, &w, &sfc).unwrap();
    w.set_rates(&[70, 11]).unwrap();
    // Any migration m: C_t(p, m) with μ=0 equals C_a(m).
    let (m, _) = dp_placement(g, &dm, &w, &sfc).unwrap();
    assert_eq!(total_cost(&dm, &w, &p, &m, 0), comm_cost(&dm, &w, &m));
    assert_eq!(migration_cost(&dm, &p, &m, 0), 0);
}

/// The Fig. 2 narrative, scaled to the k = 4 tree: a policy-preserving
/// route through a 3-VNF SFC accumulates attach + chain hops exactly.
#[test]
fn fig2_style_route_accounting() {
    // Reconstruct a comparable situation on the k=4 tree: hosts in one
    // rack, SFC spread over edge/agg/agg switches; the route h → f1 → f2 →
    // f3 → h' accumulates attach + chain hops.
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let h = ft.rack(0)[0];
    let h2 = ft.rack(0)[1];
    let sfc = Sfc::of_len(3).unwrap();
    let edge0 = ft.edge_switches()[0];
    let agg0 = ft.agg_switches()[0];
    let agg1 = ft.agg_switches()[1];
    let p = Placement::new(g, &sfc, vec![edge0, agg0, agg1]).unwrap();
    let cost = ppdc::model::comm_cost_flow(&dm, h, h2, 1, &p);
    // h→edge0 (1) + edge0→agg0 (1) + agg0→agg1 (2) + agg1→h2 (2) = 6.
    assert_eq!(cost, 6);
    assert_eq!(chain_cost(&dm, &p), 3);
}
