//! Integration tests for the future-work extensions (replication and
//! traffic scaling) working against the rest of the stack.

use ppdc::model::{comm_cost, Sfc};
use ppdc::placement::{
    comm_cost_replicated, dp_placement, greedy_replication, optimal_placement,
    optimal_placement_scaled, ReplicatedPlacement, TrafficScaling,
};
use ppdc::topology::{DistanceMatrix, FatTree, NodeId};
use ppdc::traffic::standard_workload;

#[test]
fn replication_never_hurts_and_respects_one_vnf_per_switch() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (w, _) = standard_workload(&ft, 10, 0xEE, 0);
    let sfc = Sfc::of_len(3).unwrap();
    let (p, base) = dp_placement(g, &dm, &w, &sfc).unwrap();
    let (rp, trace) = greedy_replication(g, &dm, &w, &p, 5).unwrap();
    assert_eq!(trace[0], base);
    for pair in trace.windows(2) {
        assert!(pair[1] < pair[0], "greedy only keeps strict improvements");
    }
    assert!(*trace.last().unwrap() <= base);
    // No switch hosts two instances.
    let mut all: Vec<NodeId> = (0..rp.len())
        .flat_map(|j| rp.replicas(j).to_vec())
        .collect();
    let before = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), before, "instances on distinct switches");
    assert_eq!(comm_cost_replicated(&dm, &w, &rp), *trace.last().unwrap());
}

#[test]
fn replication_lower_bounds_any_single_placement() {
    // Per-flow cheapest-replica routing can only improve on routing every
    // flow through the base chain.
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (w, _) = standard_workload(&ft, 8, 0xEF, 1);
    let sfc = Sfc::of_len(2).unwrap();
    let (p, _) = dp_placement(g, &dm, &w, &sfc).unwrap();
    let mut rp = ReplicatedPlacement::from_placement(&p);
    let unused: Vec<NodeId> = g.switches().filter(|s| !rp.occupies(*s)).take(2).collect();
    rp.add_replica(g, 0, unused[0]).unwrap();
    rp.add_replica(g, 1, unused[1]).unwrap();
    assert!(comm_cost_replicated(&dm, &w, &rp) <= comm_cost(&dm, &w, &p));
}

#[test]
fn scaled_placement_reduces_to_plain_top_at_identity() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (w, _) = standard_workload(&ft, 6, 0xF0, 0);
    let sfc = Sfc::of_len(3).unwrap();
    let id = TrafficScaling::identity(&sfc);
    let (_, scaled) = optimal_placement_scaled(g, &dm, &w, &sfc, &id, u64::MAX).unwrap();
    let (_, plain) = optimal_placement(g, &dm, &w, &sfc).unwrap();
    assert_eq!(scaled, plain);
}

#[test]
fn filtering_monotonically_reduces_optimal_cost() {
    // Stronger filtering can never make the optimal scaled cost larger.
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (w, _) = standard_workload(&ft, 6, 0xF1, 0);
    let sfc = Sfc::of_len(3).unwrap();
    let mut last = u64::MAX;
    for permille in [1000u32, 800, 500, 200] {
        let sc = TrafficScaling::uniform(&sfc, permille);
        let (_, cost) = optimal_placement_scaled(g, &dm, &w, &sfc, &sc, u64::MAX).unwrap();
        assert!(cost <= last, "σ={permille}: {cost} > {last}");
        last = cost;
    }
}

#[test]
fn workload_rates_do_not_affect_replica_validity() {
    // Replication built for one rate vector stays structurally valid (and
    // evaluable) after the rates churn — the dynamic-experiment contract.
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (mut w, trace) = standard_workload(&ft, 10, 0xF2, 0);
    let sfc = Sfc::of_len(3).unwrap();
    w.set_rates(&trace.rates_at(0)).unwrap();
    let (p, _) = dp_placement(g, &dm, &w, &sfc).unwrap();
    let (rp, _) = greedy_replication(g, &dm, &w, &p, 3).unwrap();
    for h in 1..=12 {
        w.set_rates(&trace.rates_at(h)).unwrap();
        let c = comm_cost_replicated(&dm, &w, &rp);
        assert!(c > 0 || w.total_rate() == 0);
    }
}
