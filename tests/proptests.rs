//! Property-based tests over randomly generated PPDCs and workloads.

use ppdc::model::{comm_cost, comm_cost_flow, total_cost, Placement, Sfc, Workload};
use ppdc::placement::{
    dp_placement, dp_placement_exhaustive_with_agg, dp_placement_with_agg, exhaustive_placement,
    greedy_placement, optimal_placement, steering_placement, AttachAggregates,
};
use ppdc::stroll::{dp_stroll, exhaustive_stroll, optimal_stroll, StrollInstance};
use ppdc::topology::{
    DistanceMatrix, EdgeId, FaultSet, Graph, MetricClosure, NodeId, Partition, INFINITY,
};
use proptest::prelude::*;

/// A random connected PPDC: a switch spanning tree plus extra switch-switch
/// edges, with one host per leaf-ish switch.
fn arb_ppdc() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (3usize..9, 0usize..6, 1u64..5, any::<u64>()).prop_map(
        |(switches, extra_edges, weight_scale, seed)| {
            let mut g = Graph::new();
            let sw: Vec<NodeId> = (0..switches)
                .map(|i| g.add_switch(format!("s{i}")))
                .collect();
            let mut x = seed | 1;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            // Random spanning tree over switches.
            for i in 1..switches {
                let parent = (next() as usize) % i;
                let w = 1 + (next() % weight_scale);
                g.add_edge(sw[i], sw[parent], w).unwrap();
            }
            for _ in 0..extra_edges {
                let a = (next() as usize) % switches;
                let b = (next() as usize) % switches;
                if a != b {
                    let w = 1 + (next() % weight_scale);
                    let _ = g.add_edge(sw[a], sw[b], w);
                }
            }
            // Two hosts on random switches.
            let h1 = g.add_host("h1");
            g.add_edge(h1, sw[(next() as usize) % switches], 1).unwrap();
            let h2 = g.add_host("h2");
            g.add_edge(h2, sw[(next() as usize) % switches], 1).unwrap();
            (g, vec![h1, h2])
        },
    )
}

proptest! {
    // 64 cases by default; CI raises it via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::env_or(64))]

    /// DP-Stroll produces a valid solution whose cost is at least the
    /// exact optimum and, empirically on these sizes, within 2× of it.
    #[test]
    fn dp_stroll_bounded_by_optimal((g, hosts) in arb_ppdc(), n in 1usize..4) {
        let dm = DistanceMatrix::build(&g);
        let mut members = hosts.clone();
        members.extend(g.switches());
        let mc = MetricClosure::over(&dm, &members);
        prop_assume!(g.num_switches() >= n);
        let inst = StrollInstance::new(&mc, hosts[0], hosts[1], n).unwrap();
        let dp = dp_stroll(&inst).unwrap();
        dp.validate(&inst).unwrap();
        let opt = optimal_stroll(&inst).unwrap();
        opt.validate(&inst).unwrap();
        prop_assert!(opt.cost <= dp.cost);
        prop_assert!(dp.cost <= 2 * opt.cost + 1, "dp {} opt {}", dp.cost, opt.cost);
    }

    /// The branch-and-bound stroll equals the plain exhaustive enumeration.
    #[test]
    fn bb_stroll_equals_exhaustive((g, hosts) in arb_ppdc(), n in 1usize..4) {
        let dm = DistanceMatrix::build(&g);
        let mut members = hosts.clone();
        members.extend(g.switches());
        let mc = MetricClosure::over(&dm, &members);
        prop_assume!(g.num_switches() >= n);
        let inst = StrollInstance::new(&mc, hosts[0], hosts[1], n).unwrap();
        let bb = optimal_stroll(&inst).unwrap();
        let ex = exhaustive_stroll(&inst).unwrap();
        prop_assert_eq!(bb.cost, ex.cost);
    }

    /// The placement branch-and-bound equals exhaustive enumeration, and
    /// no algorithm beats it.
    #[test]
    fn placement_optimality_chain(
        (g, hosts) in arb_ppdc(),
        n in 1usize..4,
        rate1 in 1u64..1000,
        rate2 in 1u64..1000,
    ) {
        prop_assume!(g.num_switches() >= n);
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], rate1);
        w.add_pair(hosts[1], hosts[0], rate2);
        let sfc = Sfc::of_len(n).unwrap();
        let (_, bb) = optimal_placement(&g, &dm, &w, &sfc).unwrap();
        let (_, ex) = exhaustive_placement(&g, &dm, &w, &sfc).unwrap();
        prop_assert_eq!(bb, ex, "b&b vs exhaustive");
        for (name, res) in [
            ("dp", dp_placement(&g, &dm, &w, &sfc)),
            ("steering", steering_placement(&g, &dm, &w, &sfc)),
            ("greedy", greedy_placement(&g, &dm, &w, &sfc)),
        ] {
            let (p, cost) = res.unwrap();
            prop_assert!(bb <= cost, "{} beat optimal: {} < {}", name, cost, bb);
            prop_assert_eq!(cost, comm_cost(&dm, &w, &p), "{} cost accounting", name);
        }
    }

    /// Attach aggregates reproduce Eq. 1 exactly for arbitrary placements.
    #[test]
    fn aggregates_match_eq1(
        (g, hosts) in arb_ppdc(),
        n in 1usize..4,
        rate in 1u64..10_000,
        pick in any::<u64>(),
    ) {
        prop_assume!(g.num_switches() >= n);
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], rate);
        let agg = AttachAggregates::build(&g, &dm, &w);
        // A pseudo-random valid placement.
        let switches: Vec<NodeId> = g.switches().collect();
        let mut chosen = Vec::new();
        let mut x = pick | 1;
        while chosen.len() < n {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let s = switches[(x as usize) % switches.len()];
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        let sfc = Sfc::of_len(n).unwrap();
        let p = Placement::new(&g, &sfc, chosen).unwrap();
        prop_assert_eq!(agg.comm_cost(&dm, &p), comm_cost(&dm, &w, &p));
    }

    /// The switch-aggregated build is bit-identical to the flow-by-flow
    /// oracle, for any number of flows sharing the two attach nodes in
    /// either direction (including self-loops).
    #[test]
    fn switch_aggregated_build_equals_flow_by_flow(
        (g, hosts) in arb_ppdc(),
        // Zero rates are weighted heavily: a zero-rate flow leaves its
        // hosts' masses at 0, the class of input that broke the original
        // mass==0 membership test in RateMasses.
        rates in proptest::collection::vec(
            prop_oneof![Just(0u64), 0u64..10_000],
            1..20,
        ),
        dirs in any::<u64>(),
    ) {
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        for (i, &r) in rates.iter().enumerate() {
            let (a, b) = match (dirs >> (2 * (i % 32))) & 3 {
                0 => (hosts[0], hosts[1]),
                1 => (hosts[1], hosts[0]),
                2 => (hosts[0], hosts[0]),
                _ => (hosts[1], hosts[1]),
            };
            w.add_pair(a, b, r);
        }
        let fast = AttachAggregates::build(&g, &dm, &w);
        let slow = AttachAggregates::build_flow_by_flow(&g, &dm, &w);
        prop_assert!(fast.same_as(&slow));
    }

    /// Folding random rate deltas into existing aggregates is bit-identical
    /// to rebuilding from scratch under the new rates.
    #[test]
    fn incremental_aggregates_equal_rebuild(
        (g, hosts) in arb_ppdc(),
        // Small rates make a host's accumulated delta cancel to exactly 0
        // mid-list fairly often — the class that broke the delta==0
        // membership test in apply_rate_deltas. Large rates still appear
        // via the dedicated magnitude range.
        old_rates in proptest::collection::vec(
            prop_oneof![0u64..16, 0u64..10_000],
            1..16,
        ),
        new_seed in any::<u64>(),
    ) {
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        for (i, &r) in old_rates.iter().enumerate() {
            let (a, b) = if i % 2 == 0 { (hosts[0], hosts[1]) } else { (hosts[1], hosts[0]) };
            w.add_pair(a, b, r);
        }
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        // New rates: pseudo-random, some flows unchanged (delta 0).
        let mut x = new_seed | 1;
        let mut deltas = Vec::new();
        for f in w.flow_ids().collect::<Vec<_>>() {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let new = if x.is_multiple_of(3) {
                w.rate(f)
            } else if x.is_multiple_of(2) {
                x % 16 // small: lets per-host deltas cancel to exactly 0
            } else {
                x % 10_000
            };
            let d = new as i64 - w.rate(f) as i64;
            w.set_rate(f, new);
            if d != 0 {
                deltas.push((f, d));
            }
        }
        agg.apply_rate_deltas(&dm, &w, &deltas);
        let rebuilt = AttachAggregates::build(&g, &dm, &w);
        prop_assert!(agg.same_as(&rebuilt));
    }

    /// A delta list whose prefix cancels a shared host's accumulated
    /// delta to exactly zero before a later delta retouches it — the
    /// class that broke the delta==0 membership test in
    /// `apply_rate_deltas` (the host was pushed into `touched` twice and
    /// its delta applied twice to every switch).
    #[test]
    fn cancelling_delta_prefix_matches_rebuild(
        (g, hosts) in arb_ppdc(),
        base in 1u64..1_000,
        d in 1i64..1_000,
        tail in 1i64..1_000,
    ) {
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        let f0 = w.add_pair(hosts[0], hosts[1], base);
        let f1 = w.add_pair(hosts[0], hosts[1], base + d as u64);
        let f2 = w.add_pair(hosts[0], hosts[1], base);
        let mut agg = AttachAggregates::build(&g, &dm, &w);
        // +d then -d zeroes both endpoints' accumulated deltas; `tail`
        // then retouches them.
        let deltas = [(f0, d), (f1, -d), (f2, tail)];
        for &(f, dd) in &deltas {
            w.set_rate(f, (w.rate(f) as i64 + dd) as u64);
        }
        agg.apply_rate_deltas(&dm, &w, &deltas);
        let rebuilt = AttachAggregates::build(&g, &dm, &w);
        prop_assert!(agg.same_as(&rebuilt));
    }

    /// Cost identities: C_t = C_b + C_a; rate scaling is linear; the
    /// identity migration is free.
    #[test]
    fn cost_identities(
        (g, hosts) in arb_ppdc(),
        n in 1usize..4,
        rate in 1u64..500,
        mu in 0u64..10_000,
    ) {
        prop_assume!(g.num_switches() >= 2 * n);
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], rate);
        let sfc = Sfc::of_len(n).unwrap();
        let switches: Vec<NodeId> = g.switches().collect();
        let p = Placement::new(&g, &sfc, switches[..n].to_vec()).unwrap();
        let m = Placement::new(&g, &sfc, switches[n..2 * n].to_vec()).unwrap();
        let ct = total_cost(&dm, &w, &p, &m, mu);
        prop_assert_eq!(
            ct,
            ppdc::model::migration_cost(&dm, &p, &m, mu) + comm_cost(&dm, &w, &m)
        );
        prop_assert_eq!(total_cost(&dm, &w, &p, &p, mu), comm_cost(&dm, &w, &p));
        // Linear in the rate.
        let single = comm_cost_flow(&dm, hosts[0], hosts[1], 1, &p);
        prop_assert_eq!(comm_cost_flow(&dm, hosts[0], hosts[1], rate, &p), rate * single);
    }

    /// The branch-and-bound Algorithm 3 sweep is bit-identical — cost AND
    /// switch sequence — to the exhaustive (ingress, egress) sweep it
    /// replaced: strict-inequality pruning never discards a cost-optimal
    /// candidate, so the deterministic lexicographic tie-break sees the
    /// same contenders.
    #[test]
    fn bb_placement_equals_exhaustive_sweep(
        (g, hosts) in arb_ppdc(),
        n in 3usize..6,
        rates in proptest::collection::vec(1u64..10_000, 1..6),
        dirs in any::<u64>(),
    ) {
        prop_assume!(g.num_switches() >= n);
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        for (i, &r) in rates.iter().enumerate() {
            let (a, b) = if (dirs >> i) & 1 == 0 {
                (hosts[0], hosts[1])
            } else {
                (hosts[1], hosts[0])
            };
            w.add_pair(a, b, r);
        }
        let sfc = Sfc::of_len(n).unwrap();
        let agg = AttachAggregates::build(&g, &dm, &w);
        let (p_bb, c_bb) = dp_placement_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
        let (p_ex, c_ex) = dp_placement_exhaustive_with_agg(&g, &dm, &w, &sfc, &agg).unwrap();
        prop_assert_eq!(c_bb, c_ex);
        prop_assert_eq!(p_bb.switches(), p_ex.switches());
    }

    /// After any interleaving of fail/repair events, `rebuild_dirty` fed
    /// the toggled edges is bit-identical to a from-scratch build of the
    /// degraded view — distances, parents, diameter, and connectivity.
    #[test]
    fn dirty_row_apsp_equals_full_rebuild(
        (g, _hosts) in arb_ppdc(),
        seed in any::<u64>(),
        steps in 1usize..8,
    ) {
        let mut faults = FaultSet::new(&g);
        let mut dm = DistanceMatrix::build(&g);
        let switches: Vec<NodeId> = g.switches().collect();
        let num_edges = g.num_edges() as u64;
        let mut x = seed | 1;
        let mut next = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x };
        for _ in 0..steps {
            let mut changed = Vec::new();
            // 1–3 events per step, mirroring multi-event fault hours.
            for _ in 0..(1 + next() % 3) {
                match next() % 4 {
                    0 => {
                        let e = EdgeId((next() % num_edges) as u32);
                        faults.fail_edge(e).unwrap();
                        changed.push(g.edge(e));
                    }
                    1 => {
                        let e = EdgeId((next() % num_edges) as u32);
                        faults.repair_edge(e).unwrap();
                        changed.push(g.edge(e));
                    }
                    2 => {
                        let s = switches[(next() as usize) % switches.len()];
                        faults.fail_node(s).unwrap();
                        changed.extend(g.neighbors(s).iter().map(|&(v, w)| (s, v, w)));
                    }
                    _ => {
                        let s = switches[(next() as usize) % switches.len()];
                        faults.repair_node(s).unwrap();
                        changed.extend(g.neighbors(s).iter().map(|&(v, w)| (s, v, w)));
                    }
                }
            }
            let view = g.degraded_view(&faults);
            dm.rebuild_dirty(&view, &changed);
            prop_assert!(dm.same_as(&DistanceMatrix::build(&view)),
                "dirty-row rebuild diverged from a full build");
        }
    }

    /// Failing and repairing elements round-trips to bit-identical
    /// distances and attach aggregates: node ids are stable across
    /// degraded views, and the empty fault set reproduces the original
    /// edge insertion order.
    #[test]
    fn fail_repair_round_trip_restores_aggregates(
        (g, hosts) in arb_ppdc(),
        rate in 1u64..10_000,
        pick in any::<u64>(),
    ) {
        let dm0 = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], rate);
        let agg0 = AttachAggregates::build(&g, &dm0, &w);
        let mut faults = FaultSet::new(&g);
        let switches: Vec<NodeId> = g.switches().collect();
        let dead = switches[(pick as usize) % switches.len()];
        faults.fail_node(dead).unwrap();
        faults.fail_edge(EdgeId((pick >> 16) as u32 % g.num_edges() as u32)).unwrap();
        let mut dm = DistanceMatrix::build(&g);
        dm.rebuild_into(&g.degraded_view(&faults));
        faults.repair_node(dead).unwrap();
        for e in faults.failed_edges().collect::<Vec<_>>() {
            faults.repair_edge(e).unwrap();
        }
        prop_assert!(faults.is_healthy());
        let healed = g.degraded_view(&faults);
        dm.rebuild_into(&healed);
        for a in g.nodes() {
            for b in g.nodes() {
                prop_assert_eq!(dm.cost(a, b), dm0.cost(a, b));
            }
        }
        let agg = AttachAggregates::build(&healed, &dm, &w);
        prop_assert!(agg.same_as(&agg0));
    }

    /// On a degraded view the restricted switch-aggregated build equals
    /// the restricted flow-by-flow oracle — INFINITY saturation included
    /// (a positive mass across a cut pins the attach sum at exactly the
    /// sentinel; zero-rate flows never observe it).
    #[test]
    fn degraded_restricted_build_matches_oracle(
        (g, hosts) in arb_ppdc(),
        rates in proptest::collection::vec(prop_oneof![Just(0u64), 1u64..10_000], 1..8),
        pick in any::<u64>(),
    ) {
        let mut w = Workload::new();
        for (i, &r) in rates.iter().enumerate() {
            let (a, b) = if i % 2 == 0 { (hosts[0], hosts[1]) } else { (hosts[1], hosts[0]) };
            w.add_pair(a, b, r);
        }
        let mut faults = FaultSet::new(&g);
        let switches: Vec<NodeId> = g.switches().collect();
        let dead = switches[(pick as usize) % switches.len()];
        faults.fail_node(dead).unwrap();
        let view = g.degraded_view(&faults);
        let dm = DistanceMatrix::build(&view);
        let candidates: Vec<NodeId> =
            switches.iter().copied().filter(|&s| s != dead).collect();
        let fast = AttachAggregates::build_restricted(&view, &dm, &w, &candidates);
        let slow =
            AttachAggregates::build_restricted_flow_by_flow(&view, &dm, &w, &candidates);
        prop_assert!(fast.same_as(&slow));
    }

    /// The INFINITY sentinel is exactly the cross-component indicator on a
    /// degraded view: `cost == INFINITY` ⇔ `hops`/`path` are `None` ⇔ the
    /// endpoints sit in different components — never a silent wraparound.
    #[test]
    fn disconnection_sentinel_is_consistent(
        (g, _hosts) in arb_ppdc(),
        pick in any::<u64>(),
    ) {
        let mut faults = FaultSet::new(&g);
        let switches: Vec<NodeId> = g.switches().collect();
        faults.fail_node(switches[(pick as usize) % switches.len()]).unwrap();
        faults.fail_edge(EdgeId((pick >> 8) as u32 % g.num_edges() as u32)).unwrap();
        let view = g.degraded_view(&faults);
        let dm = DistanceMatrix::build(&view);
        let part = Partition::of(&view);
        for a in view.nodes() {
            for b in view.nodes() {
                let connected = part.same_component(a, b);
                prop_assert_eq!(dm.cost(a, b) < INFINITY, connected);
                prop_assert_eq!(dm.hops(a, b).is_some(), connected);
                if a != b {
                    prop_assert_eq!(dm.path(a, b).is_some(), connected);
                }
            }
        }
    }

    /// mPareto's outcome always satisfies Eq. 8 accounting and never loses
    /// to staying put.
    #[test]
    fn mpareto_never_worse_than_staying(
        (g, hosts) in arb_ppdc(),
        n in 1usize..4,
        r1 in 1u64..1000,
        r2 in 1u64..1000,
        mu in 0u64..200,
    ) {
        prop_assume!(g.num_switches() >= n);
        let dm = DistanceMatrix::build(&g);
        let mut w = Workload::new();
        w.add_pair(hosts[0], hosts[1], r1);
        w.add_pair(hosts[1], hosts[0], r2);
        let sfc = Sfc::of_len(n).unwrap();
        let (p, _) = dp_placement(&g, &dm, &w, &sfc).unwrap();
        w.set_rates(&[r2, r1]).unwrap();
        let out = ppdc::migration::mpareto(&g, &dm, &w, &sfc, &p, mu).unwrap();
        prop_assert_eq!(out.total_cost, total_cost(&dm, &w, &p, &out.migration, mu));
        prop_assert!(out.total_cost <= comm_cost(&dm, &w, &p));
    }

    /// `pareto_front` always returns a strictly sorted, mutually
    /// non-dominated, sentinel-free front that covers every finite input
    /// point and does not depend on input order.
    #[test]
    fn pareto_front_is_nondominated_sorted_and_shuffle_invariant(
        raw in proptest::collection::vec(
            (
                prop_oneof![Just(INFINITY), 0u64..40],
                prop_oneof![Just(INFINITY), 0u64..40],
            ),
            0..24,
        ),
        seed in proptest::prelude::any::<u64>(),
    ) {
        use ppdc::migration::{pareto_front, FrontierPoint};
        let pts: Vec<FrontierPoint> = raw
            .iter()
            .map(|&(b, a)| FrontierPoint {
                placement: Placement::new_relaxed(vec![NodeId(0)]),
                migration_cost: b,
                comm_cost: a,
            })
            .collect();
        let front = pareto_front(&pts);
        for f in &front {
            prop_assert!(f.migration_cost < INFINITY && f.comm_cost < INFINITY,
                "sentinel point leaked onto the front");
        }
        for pair in front.windows(2) {
            prop_assert!(pair[0].migration_cost < pair[1].migration_cost,
                "C_b must rise strictly");
            prop_assert!(pair[0].comm_cost > pair[1].comm_cost,
                "C_a must fall strictly");
        }
        // Completeness: every finite input point is weakly dominated by
        // some front point (so nothing undominated was dropped).
        for &(b, a) in raw.iter().filter(|&&(b, a)| b < INFINITY && a < INFINITY) {
            prop_assert!(
                front.iter().any(|f| f.migration_cost <= b && f.comm_cost <= a),
                "input ({b}, {a}) escaped the front"
            );
        }
        // Order invariance: a seeded Fisher–Yates permutation of the input
        // yields the same cost front.
        let mut shuffled = pts.clone();
        let mut x = seed | 1;
        for i in (1..shuffled.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            shuffled.swap(i, (x as usize) % (i + 1));
        }
        let key = |f: &FrontierPoint| (f.migration_cost, f.comm_cost);
        let a: Vec<_> = front.iter().map(key).collect();
        let b: Vec<_> = pareto_front(&shuffled).iter().map(key).collect();
        prop_assert_eq!(a, b);
    }

    /// The closed-form fat-tree oracle is bit-identical to the dense BFS
    /// matrix: every pairwise cost, plus (sampled) reconstructed paths and
    /// hop counts under the shared min-id tie-break.
    #[test]
    fn analytic_oracle_matches_dense_matrix(
        k in prop_oneof![Just(4usize), Just(6), Just(8)],
        seed in any::<u64>(),
    ) {
        use ppdc::topology::{DistanceOracle, FatTree, FatTreeOracle};
        let ft = FatTree::build(k).unwrap();
        let oracle = FatTreeOracle::new(&ft);
        let dm = DistanceMatrix::build(ft.graph());
        let n = ft.graph().num_nodes();
        prop_assert_eq!(oracle.num_nodes(), n);
        prop_assert_eq!(DistanceOracle::diameter(&oracle), dm.diameter());
        prop_assert_eq!(oracle.all_connected(), dm.all_connected());
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    DistanceOracle::cost(&oracle, NodeId(u as u32), NodeId(v as u32)),
                    dm.cost(NodeId(u as u32), NodeId(v as u32)),
                    "k={} u={} v={}", k, u, v
                );
            }
        }
        // 64 seeded pairs: identical tie-broken paths and hop counts.
        let mut x = seed | 1;
        for _ in 0..64 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let u = NodeId((x as usize % n) as u32);
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let v = NodeId((x as usize % n) as u32);
            prop_assert_eq!(
                DistanceOracle::path(&oracle, u, v),
                dm.path(u, v),
                "k={} path {}→{}", k, u.index(), v.index()
            );
            prop_assert_eq!(DistanceOracle::hops(&oracle, u, v), dm.hops(u, v));
        }
    }

    /// The orbit-compressed branch-and-bound sweep, driven by the analytic
    /// oracle, reproduces the dense exhaustive sweep bit for bit — cost AND
    /// the lexicographic switch choice — on fat-trees with random
    /// workloads.
    #[test]
    fn orbit_compressed_bb_equals_exhaustive(
        n in 3usize..6,
        num_flows in 1usize..10,
        seed in any::<u64>(),
    ) {
        use ppdc::topology::{FatTree, FatTreeOracle};
        let ft = FatTree::build(4).unwrap();
        let oracle = FatTreeOracle::new(&ft);
        let g = ft.graph();
        let dm = DistanceMatrix::build(g);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut w = Workload::new();
        let mut x = seed | 1;
        for _ in 0..num_flows {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let a = hosts[x as usize % hosts.len()];
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let b = hosts[x as usize % hosts.len()];
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            w.add_pair(a, b, x % 10_000);
        }
        prop_assume!(w.rates().iter().any(|&r| r > 0));
        let sfc = Sfc::of_len(n).unwrap();
        let agg_o = AttachAggregates::build(g, &oracle, &w);
        let (p_o, c_o) = dp_placement_with_agg(g, &oracle, &w, &sfc, &agg_o).unwrap();
        let agg_d = AttachAggregates::build(g, &dm, &w);
        let (p_d, c_d) = dp_placement_exhaustive_with_agg(g, &dm, &w, &sfc, &agg_d).unwrap();
        prop_assert_eq!(c_o, c_d, "cost mismatch at n={}", n);
        prop_assert_eq!(p_o.switches(), p_d.switches(), "tie-break mismatch at n={}", n);
    }

    /// Crash safety: killing a fault-injected day at a random hour and
    /// resuming from the JSON-round-tripped checkpoint finishes the day
    /// **bit-identically** to the uninterrupted run — every per-hour cost
    /// row, every degraded-hour provenance record, every aggregate counter
    /// — for any policy, workload seed, and fault mix.
    #[test]
    fn kill_and_resume_is_bit_identical(
        seed in any::<u64>(),
        num_pairs in 4usize..24,
        policy_pick in 0usize..5,
        kill_pick in any::<u32>(),
        link_f in 0u32..8,
        switch_f in 0u32..5,
        repair_after in 1u32..4,
    ) {
        use ppdc::sim::{
            resume_day, run_day, Checkpoint, EngineConfig, FaultConfig, FaultSchedule,
            MigrationPolicy, SimConfig,
        };
        use ppdc::topology::FatTree;
        use ppdc::traffic::standard_workload;
        let ft = FatTree::build(4).unwrap();
        let (w, trace) = standard_workload(&ft, num_pairs, seed % 1024, 0);
        let n_hours = trace.model().n_hours;
        let fc = FaultConfig {
            link_fail_per_hour: f64::from(link_f) / 100.0,
            switch_fail_per_hour: f64::from(switch_f) / 100.0,
            repair_after,
        };
        let schedule = FaultSchedule::generate(ft.graph(), n_hours, &fc, seed ^ 0xFA17);
        let sfc = Sfc::of_len(3).unwrap();
        let policy = match policy_pick {
            0 => MigrationPolicy::MPareto,
            1 => MigrationPolicy::OptimalVnf { budget: 100_000 },
            2 => MigrationPolicy::Plan { slots: 4, passes: 3 },
            3 => MigrationPolicy::Mcf { slots: 4, candidates: 8 },
            _ => MigrationPolicy::NoMigration,
        };
        let cfg = SimConfig { mu: 100, vm_mu: 100, policy };
        let full = run_day(
            ft.graph(), &w, &trace, &sfc, &cfg, &schedule, &EngineConfig::default(),
        ).unwrap();
        prop_assert!(full.completed);
        let kill = 1 + kill_pick % n_hours;
        let halted = run_day(
            ft.graph(), &w, &trace, &sfc, &cfg, &schedule,
            &EngineConfig { stop_after: Some(kill), ..EngineConfig::default() },
        ).unwrap();
        let ck = halted.checkpoint.expect("stopped runs carry a checkpoint");
        prop_assert_eq!(ck.hour, kill);
        // Survive a serialization round-trip, like a real crash would force.
        let ck = Checkpoint::from_json(&ck.to_json()).unwrap();
        let resumed = resume_day(
            ft.graph(), &w, &trace, &sfc, &cfg, &schedule, &EngineConfig::default(), &ck,
        ).unwrap();
        prop_assert!(resumed.completed);
        prop_assert_eq!(resumed.result, full.result, "policy {:?} kill {}", policy, kill);
    }

    /// Sharded streaming ingestion is bit-identical to building from
    /// scratch: after every epoch of random rate movement the incrementally
    /// folded aggregates — full *and* restricted to a random candidate
    /// subset — equal a fresh [`AttachAggregates`] at the new rates, and
    /// the store's exported rate vector equals the target vector.
    #[test]
    fn streamed_ingest_equals_rebuild_with_restricted_candidates(
        num_flows in 1usize..24,
        n_epochs in 1usize..6,
        seed in any::<u64>(),
    ) {
        use ppdc::model::FlowId;
        use ppdc::sim::{RateDelta, ShardedFlowStore};
        use ppdc::topology::{FatTree, FatTreeOracle};
        let ft = FatTree::build(4).unwrap();
        let g = ft.graph();
        let oracle = FatTreeOracle::new(&ft);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut x = seed | 1;
        let mut next = || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x };
        let mut w = Workload::new();
        for _ in 0..num_flows {
            let a = hosts[next() as usize % hosts.len()];
            let b = hosts[next() as usize % hosts.len()];
            w.add_pair(a, b, next() % 10_000);
        }
        let switches: Vec<NodeId> = g.switches().collect();
        let mut candidates: Vec<NodeId> =
            switches.iter().copied().filter(|_| next() % 3 != 0).collect();
        if candidates.is_empty() {
            candidates = switches;
        }
        let mut store = ShardedFlowStore::build(g, &w).unwrap();
        let mut agg = AttachAggregates::build(g, &oracle, &w);
        let mut agg_r = AttachAggregates::build_restricted(g, &oracle, &w, &candidates);
        let mut w_cur = w.clone();
        for _ in 0..n_epochs {
            let target: Vec<u64> = (0..w_cur.num_flows()).map(|_| next() % 10_000).collect();
            let deltas: Vec<RateDelta> = w_cur
                .rates()
                .iter()
                .enumerate()
                .map(|(f, &r)| RateDelta {
                    flow: FlowId(f as u32),
                    delta: target[f] as i64 - r as i64,
                })
                .collect();
            let report = store.ingest(&deltas).unwrap();
            agg.try_apply_mass_deltas(&oracle, &report.masses, report.total_delta).unwrap();
            agg_r.try_apply_mass_deltas(&oracle, &report.masses, report.total_delta).unwrap();
            w_cur.set_rates(&target).unwrap();
            prop_assert!(
                agg.same_as(&AttachAggregates::build(g, &oracle, &w_cur)),
                "full aggregates drifted from the rebuild"
            );
            prop_assert!(
                agg_r.same_as(&AttachAggregates::build_restricted(g, &oracle, &w_cur, &candidates)),
                "restricted aggregates drifted from the rebuild"
            );
            let mut exported = Vec::new();
            store.export_rates(&mut exported);
            prop_assert_eq!(exported, target);
        }
    }

    /// The warm-started re-solver is bit-identical to the exhaustive cold
    /// sweep — cost **and** lexicographic switch tie-break — across random
    /// epoch sequences of churn confined to a random locality, with the
    /// previous optimum seeding every warm solve and multi-epoch delta
    /// batches merged into a single bound-cache refresh.
    #[test]
    fn warm_resolve_is_bit_identical_to_cold(
        seed in any::<u64>(),
        num_flows in 4usize..24,
        n_epochs in 2usize..7,
        n in 3usize..5,
        locality in 0usize..3,
        solve_every in 1usize..3,
    ) {
        use ppdc::model::FlowId;
        use ppdc::placement::{dp_placement_warm, BoundCache};
        use ppdc::sim::{RateDelta, ShardedFlowStore};
        use ppdc::topology::{FatTree, FatTreeOracle};
        let ft = FatTree::build(4).unwrap();
        let g = ft.graph();
        let oracle = FatTreeOracle::new(&ft);
        let hosts: Vec<NodeId> = g.hosts().collect();
        let mut x = seed | 1;
        let mut next = || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x };
        let mut w = Workload::new();
        for _ in 0..num_flows {
            let a = hosts[next() as usize % hosts.len()];
            let b = hosts[next() as usize % hosts.len()];
            w.add_pair(a, b, next() % 1_000 + 1);
        }
        let sfc = Sfc::of_len(n).unwrap();
        // Churn stays confined to a prefix of the hosts — a couple of
        // racks, half the fabric, or everything — mirroring the smoke's
        // churn localities.
        let hot = [hosts.len() / 8 + 1, hosts.len() / 2, hosts.len()][locality];
        let flow_src: Vec<usize> = w
            .iter()
            .map(|(_, src, _, _)| hosts.iter().position(|&h| h == src).unwrap())
            .collect();
        let mut store = ShardedFlowStore::build(g, &w).unwrap();
        let mut agg = AttachAggregates::build(g, &oracle, &w);
        let mut cache = BoundCache::new();
        let mut prev: Option<Placement> = None;
        let mut rates: Vec<u64> = w.rates().to_vec();
        for epoch in 0..n_epochs {
            let deltas: Vec<RateDelta> = (0..rates.len()).filter_map(|f| {
                if flow_src[f] >= hot || next() % 2 == 0 {
                    return None;
                }
                let d = ((next() % 2_000) as i64 - 1_000).max(-(rates[f] as i64));
                (d != 0).then_some(RateDelta { flow: FlowId(f as u32), delta: d })
            }).collect();
            for d in &deltas {
                let f = d.flow.index();
                rates[f] = (rates[f] as i64 + d.delta) as u64;
            }
            let report = store.ingest(&deltas).unwrap();
            agg.try_apply_mass_deltas(&oracle, &report.masses, report.total_delta).unwrap();
            cache.note_mass_deltas(&report.masses);
            // Not every epoch solves: skipped epochs pile their deltas
            // into the next refresh, like a drift-gated engine would.
            if (epoch + 1) % solve_every != 0 && epoch + 1 != n_epochs {
                continue;
            }
            let (wp, wc) =
                dp_placement_warm(g, &oracle, &w, &sfc, &agg, &mut cache, prev.as_ref()).unwrap();
            let (cp, cc) = dp_placement_exhaustive_with_agg(g, &oracle, &w, &sfc, &agg).unwrap();
            prop_assert_eq!(wc, cc, "epoch {}: warm cost diverged", epoch);
            prop_assert_eq!(
                wp.switches(), cp.switches(),
                "epoch {}: warm tie-break diverged", epoch
            );
            prev = Some(wp);
        }
    }

    /// Crash safety for the streaming engine: killing a streamed day at a
    /// random epoch and resuming from the JSON-round-tripped checkpoint
    /// finishes **bit-identically** to the uninterrupted run — placement,
    /// per-epoch records, and every accumulated counter — across drift
    /// thresholds that re-solve always, sometimes, and never, and across
    /// certified-gap settings that accept or reject the incumbent. The
    /// resumed engine starts from a fresh [`ppdc::placement::BoundCache`]
    /// (never persisted), so this also pins down that a rebuilt warm cache
    /// cannot steer any post-restore re-solve.
    #[test]
    fn stream_kill_and_resume_is_bit_identical(
        seed in any::<u64>(),
        num_pairs in 4usize..24,
        kill_pick in any::<u32>(),
        threshold_pick in 0usize..3,
        gap_pick in 0usize..3,
    ) {
        use ppdc::sim::{resume_stream_day, run_stream_day, StreamCheckpoint, StreamConfig};
        use ppdc::topology::{FatTree, FatTreeOracle};
        use ppdc::traffic::standard_workload;
        let ft = FatTree::build(4).unwrap();
        let oracle = FatTreeOracle::new(&ft);
        let (w, trace) = standard_workload(&ft, num_pairs, seed % 1024, 0);
        let n_hours = trace.model().n_hours;
        prop_assume!(n_hours >= 2);
        let sfc = Sfc::of_len(3).unwrap();
        let cfg = StreamConfig {
            drift_threshold: [0u64, 5_000, u64::MAX][threshold_pick],
            max_certified_gap: [0u64, 10_000, u64::MAX][gap_pick],
            ..StreamConfig::default()
        };
        let full = run_stream_day(ft.graph(), &oracle, &w, &trace, &sfc, &cfg).unwrap();
        prop_assert!(full.completed);
        let kill = 1 + kill_pick % (n_hours - 1);
        let halted = run_stream_day(
            ft.graph(), &oracle, &w, &trace, &sfc,
            &StreamConfig { stop_after: Some(kill), ..cfg.clone() },
        ).unwrap();
        prop_assert!(!halted.completed);
        let ck = halted.checkpoint.expect("stopped runs carry a checkpoint");
        prop_assert_eq!(ck.epoch, kill);
        // Survive a serialization round-trip, like a real crash would force.
        let ck = StreamCheckpoint::from_json(&ck.to_json()).unwrap();
        let resumed =
            resume_stream_day(ft.graph(), &oracle, &w, &trace, &sfc, &cfg, &ck).unwrap();
        prop_assert!(resumed.completed);
        prop_assert_eq!(
            resumed.result, full.result,
            "threshold {} gap {} kill {}", cfg.drift_threshold, cfg.max_certified_gap, kill
        );
    }
}
