//! Cross-crate integration: full PPDC lifetimes on generated workloads.

use ppdc::migration::{mcf_vm_migration, mpareto, plan_vm_migration};
use ppdc::model::{comm_cost, total_cost, Placement, Sfc};
use ppdc::placement::{dp_placement, greedy_placement, steering_placement};
use ppdc::sim::{simulate, summarize, MigrationPolicy, SimConfig};
use ppdc::topology::{DistanceMatrix, FatTree};
use ppdc::traffic::standard_workload;

#[test]
fn full_day_invariants_all_policies() {
    let ft = FatTree::build(4).unwrap();
    let dm = DistanceMatrix::build(ft.graph());
    let (w, trace) = standard_workload(&ft, 14, 31, 0);
    let sfc = Sfc::of_len(4).unwrap();
    for policy in [
        MigrationPolicy::MPareto,
        MigrationPolicy::OptimalVnf { budget: 50_000_000 },
        MigrationPolicy::Plan {
            slots: 8,
            passes: 4,
        },
        MigrationPolicy::Mcf {
            slots: 8,
            candidates: 8,
        },
        MigrationPolicy::NoMigration,
    ] {
        let cfg = SimConfig {
            mu: 50,
            vm_mu: 50,
            policy,
        };
        let r = simulate(ft.graph(), &dm, &w, &trace, &sfc, &cfg).unwrap();
        assert_eq!(r.hours.len(), 12);
        assert_eq!(
            r.total_cost,
            r.hours.iter().map(|h| h.total_cost).sum::<u64>(),
            "{policy:?}"
        );
        assert_eq!(
            r.total_migrations,
            r.hours.iter().map(|h| h.num_migrations).sum::<usize>()
        );
    }
}

#[test]
fn policy_ordering_over_a_day() {
    // Optimal ≤ mPareto ≤ NoMigration in day totals (the Fig. 11(a) order).
    let ft = FatTree::build(4).unwrap();
    let dm = DistanceMatrix::build(ft.graph());
    let mut totals = vec![];
    for run in 0..3u64 {
        let (w, trace) = standard_workload(&ft, 10, 77, run);
        let sfc = Sfc::of_len(3).unwrap();
        let day = |policy| {
            let cfg = SimConfig {
                mu: 20,
                vm_mu: 20,
                policy,
            };
            simulate(ft.graph(), &dm, &w, &trace, &sfc, &cfg)
                .unwrap()
                .total_cost
        };
        let opt = day(MigrationPolicy::OptimalVnf {
            budget: 100_000_000,
        });
        let mp = day(MigrationPolicy::MPareto);
        let nm = day(MigrationPolicy::NoMigration);
        assert!(opt <= mp, "run {run}: optimal {opt} > mpareto {mp}");
        assert!(mp <= nm, "run {run}: mpareto {mp} > stay {nm}");
        totals.push(mp as f64);
    }
    let s = summarize(&totals).expect("at least one run");
    assert!(s.mean > 0.0);
}

#[test]
fn placements_from_all_algorithms_are_valid() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (w, _) = standard_workload(&ft, 12, 5, 0);
    for n in [1usize, 2, 3, 5] {
        let sfc = Sfc::of_len(n).unwrap();
        for (name, result) in [
            ("dp", dp_placement(g, &dm, &w, &sfc)),
            ("steering", steering_placement(g, &dm, &w, &sfc)),
            ("greedy", greedy_placement(g, &dm, &w, &sfc)),
        ] {
            let (p, cost) = result.unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
            // Re-validate through the strict constructor.
            Placement::new(g, &sfc, p.switches().to_vec())
                .unwrap_or_else(|e| panic!("{name} n={n}: invalid placement {e}"));
            assert_eq!(cost, comm_cost(&dm, &w, &p), "{name} n={n}");
        }
    }
}

#[test]
fn vm_baselines_preserve_vm_count_and_capacity() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (mut w, trace) = standard_workload(&ft, 10, 13, 0);
    w.set_rates(&trace.rates_at(6)).unwrap();
    let sfc = Sfc::of_len(3).unwrap();
    let (p, _) = dp_placement(g, &dm, &w, &sfc).unwrap();
    let slots = 6;
    let plan = plan_vm_migration(g, &dm, &w, &p, 1, slots, 5);
    let mcf = mcf_vm_migration(g, &dm, &w, &p, 1, slots, 8).unwrap();
    for out in [&plan.workload, &mcf.workload] {
        assert_eq!(out.num_vms(), w.num_vms());
        out.validate(g).unwrap();
    }
    // Plan respects the slot cap strictly (it starts within it here).
    let caps = ppdc::model::HostCapacities::uniform(g, &plan.workload, slots);
    for h in g.hosts() {
        assert!(caps.used(h) <= slots);
    }
}

#[test]
fn migration_outcome_matches_eq8_accounting() {
    let ft = FatTree::build(4).unwrap();
    let g = ft.graph();
    let dm = DistanceMatrix::build(g);
    let (mut w, trace) = standard_workload(&ft, 8, 3, 1);
    let sfc = Sfc::of_len(3).unwrap();
    w.set_rates(&trace.rates_at(0)).unwrap();
    let (p, _) = dp_placement(g, &dm, &w, &sfc).unwrap();
    for h in [3u32, 6, 9] {
        w.set_rates(&trace.rates_at(h)).unwrap();
        for mu in [0u64, 10, 10_000] {
            let out = mpareto(g, &dm, &w, &sfc, &p, mu).unwrap();
            assert_eq!(
                out.total_cost,
                total_cost(&dm, &w, &p, &out.migration, mu),
                "hour {h} mu {mu}"
            );
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let ft = FatTree::build(4).unwrap();
    let dm = DistanceMatrix::build(ft.graph());
    let run = |seed| {
        let (w, trace) = standard_workload(&ft, 9, seed, 0);
        let sfc = Sfc::of_len(3).unwrap();
        let cfg = SimConfig {
            mu: 100,
            vm_mu: 100,
            policy: MigrationPolicy::MPareto,
        };
        simulate(ft.graph(), &dm, &w, &trace, &sfc, &cfg)
            .unwrap()
            .total_cost
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds diverge");
}
