#!/usr/bin/env bash
# Local CI gate. Mirrors what reviewers run before merging:
#
#   1. formatting      — cargo fmt --check over the whole workspace
#   2. lints           — clippy with warnings denied, all targets
#   3. project lints   — ppdc-analyzer over the whole workspace
#   4. tier-1 verify   — release build + full test suite
#   5. contracts       — solver tests with strict-invariants enabled
#
# The bench crate (ppdc-bench) is outside the workspace default-members,
# so steps 3's plain `cargo build`/`cargo test` skip it; clippy still
# covers it via --workspace so bench code cannot rot. Everything here is
# fully offline — all third-party dependencies are vendored stand-ins.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ppdc-analyzer --workspace (project-specific lints, baseline-capped, 10s budget)"
mkdir -p target
cargo build --release -q -p ppdc-analyzer
analyzer_start=$(date +%s%N)
./target/release/ppdc-analyzer --workspace \
    --json-out target/analyzer.json \
    --baseline analyzer-baseline.json
analyzer_elapsed_ms=$(( ($(date +%s%N) - analyzer_start) / 1000000 ))
echo "    analyzer wall clock: ${analyzer_elapsed_ms} ms (budget 10000 ms)"
if [ "$analyzer_elapsed_ms" -ge 10000 ]; then
    echo "ppdc-analyzer exceeded its 10s wall-clock budget" >&2
    exit 1
fi

echo "==> cargo build --release (tier-1, default members)"
cargo build --release

echo "==> cargo test -q (tier-1, default members)"
cargo test -q

echo "==> solver contracts (strict-invariants feature)"
cargo test -q --features strict-invariants -p ppdc-topology -p ppdc-placement -p ppdc-migration

echo "==> proptests at PROPTEST_CASES=256"
PROPTEST_CASES=256 cargo test -q --test proptests

echo "==> failure-sweep smoke (quick scale) with metrics export"
mkdir -p target
cargo run --release -p ppdc-experiments -- --quick failsweep --metrics target/ci-metrics.json > /dev/null

echo "==> metrics schema check (ppdc-obs/v1 phase keys)"
cargo run --release -p ppdc-experiments -- --check-metrics target/ci-metrics.json

echo "==> k=32 oracle smoke (1,280 switches, no dense matrix, 15s budget)"
cargo run --release -p ppdc-experiments -- smoke-k32 --budget-ms 15000

echo "==> chaos smoke (64 seeded trials: crashes, torn checkpoints, starvation)"
cargo run --release -p ppdc-experiments -- chaos --trials 64 --seed 1

echo "==> streaming-engine smoke (1M flows over the k=32 fabric, counter invariants)"
cargo run --release -p ppdc-experiments -- stream --flows 1000000 --budget-ms 120000

echo "==> churned-day stream smoke (hot-rack/two-pod/full-fabric spikes, warm-solver counters + budget)"
cargo run --release -p ppdc-experiments -- stream --churned --flows 1000000 --budget-ms 120000 --warm-ms 1000

echo "==> bench smoke (oracle + placement + checkpoint + stream groups once, trajectory appended)"
rm -f target/ci-bench-samples.jsonl
PPDC_BENCH_ONLY=dp_placement,dp_placement_k32 \
    PPDC_BENCH_JSON="$PWD/target/ci-bench-samples.jsonl" \
    cargo bench -p ppdc-bench --bench placement
PPDC_BENCH_ONLY=distance_oracle \
    PPDC_BENCH_JSON="$PWD/target/ci-bench-samples.jsonl" \
    cargo bench -p ppdc-bench --bench topology
PPDC_BENCH_JSON="$PWD/target/ci-bench-samples.jsonl" \
    cargo bench -p ppdc-bench --bench checkpoint
PPDC_BENCH_JSON="$PWD/target/ci-bench-samples.jsonl" \
    cargo bench -p ppdc-bench --bench analyzer
PPDC_BENCH_ONLY=stream_ingest,stream_resolve \
    PPDC_BENCH_JSON="$PWD/target/ci-bench-samples.jsonl" \
    cargo bench -p ppdc-bench --bench stream
cargo run --release -p ppdc-experiments -- \
    --append-bench BENCH_placement.json \
    --bench-samples target/ci-bench-samples.jsonl \
    --label "warm-started incremental re-solver: seeded bounds + chain memo" \
    --date "$(date +%F)" \
    --note "Timings from the offline stopwatch criterion stand-in (vendor/criterion), min/median/mean ns per iteration. stream_resolve pits a cold k=32 dp_placement_with_agg against dp_placement_warm re-solving after hot-rack/two-pod/full-fabric churn; warm-vs-cold highlights are intra-run medians. dp_placement/k4_l20 is back at its pre-orbit-sweep level (ORBIT_MIN_SWITCHES cutoff skips orbit compression below 64 switches), recovering the small-fabric regression introduced with the orbit-compressed sweep."

echo "CI OK"
